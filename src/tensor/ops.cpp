#include "tensor/ops.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace fedca::tensor {

namespace {

void require_equal_size(std::span<const float> x, std::span<const float> y,
                        const char* what) {
  if (x.size() != y.size()) {
    throw std::invalid_argument(std::string(what) + ": size mismatch (" +
                                std::to_string(x.size()) + " vs " +
                                std::to_string(y.size()) + ")");
  }
}

}  // namespace

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  require_equal_size(x, y, "axpy");
  const float* px = x.data();
  float* py = y.data();
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) py[i] += alpha * px[i];
}

void copy(std::span<const float> x, std::span<float> y) {
  require_equal_size(x, y, "copy");
  std::copy(x.begin(), x.end(), y.begin());
}

void scale(float alpha, std::span<float> y) {
  float* py = y.data();
  const std::size_t n = y.size();
  for (std::size_t i = 0; i < n; ++i) py[i] *= alpha;
}

namespace {

// Lane width for the double-accumulating span reductions. Eight
// independent double lanes map onto one 512-bit (or two 256-bit) vector
// accumulators; the final combine is a fixed halving tree, so the result
// does not depend on the vector width the compiler picks.
constexpr std::size_t kRedLanes = 8;

double reduce_lanes(double (&acc)[kRedLanes]) {
  for (std::size_t stride = kRedLanes / 2; stride > 0; stride /= 2) {
    for (std::size_t l = 0; l < stride; ++l) acc[l] += acc[l + stride];
  }
  return acc[0];
}

}  // namespace

double dot(std::span<const float> x, std::span<const float> y) {
  require_equal_size(x, y, "dot");
  const float* px = x.data();
  const float* py = y.data();
  const std::size_t n = x.size();
  double acc[kRedLanes] = {};
  std::size_t i = 0;
  for (; i + kRedLanes <= n; i += kRedLanes) {
    for (std::size_t l = 0; l < kRedLanes; ++l) {
      acc[l] += static_cast<double>(px[i + l]) * static_cast<double>(py[i + l]);
    }
  }
  double total = reduce_lanes(acc);
  for (; i < n; ++i) {
    total += static_cast<double>(px[i]) * static_cast<double>(py[i]);
  }
  return total;
}

double l2_norm(std::span<const float> x) { return std::sqrt(dot(x, x)); }

double l1_norm(std::span<const float> x) {
  const float* px = x.data();
  const std::size_t n = x.size();
  double acc[kRedLanes] = {};
  std::size_t i = 0;
  for (; i + kRedLanes <= n; i += kRedLanes) {
    for (std::size_t l = 0; l < kRedLanes; ++l) {
      acc[l] += std::abs(static_cast<double>(px[i + l]));
    }
  }
  double total = reduce_lanes(acc);
  for (; i < n; ++i) total += std::abs(static_cast<double>(px[i]));
  return total;
}

double cosine_similarity(std::span<const float> x, std::span<const float> y) {
  require_equal_size(x, y, "cosine_similarity");
  const double nx = l2_norm(x);
  const double ny = l2_norm(y);
  if (nx == 0.0 || ny == 0.0) return 0.0;
  return dot(x, y) / (nx * ny);
}

double magnitude_similarity(std::span<const float> x, std::span<const float> y) {
  const double nx = l2_norm(x);
  const double ny = l2_norm(y);
  if (nx == 0.0 && ny == 0.0) return 1.0;
  const double lo = std::min(nx, ny);
  const double hi = std::max(nx, ny);
  if (hi == 0.0) return 1.0;
  return lo / hi;
}

void bias_add(std::span<float> out, std::size_t rows, std::span<const float> bias) {
  const std::size_t cols = bias.size();
  if (out.size() != rows * cols) {
    throw std::invalid_argument("bias_add: out size " + std::to_string(out.size()) +
                                " != rows*cols " + std::to_string(rows * cols));
  }
  const float* pb = bias.data();
  for (std::size_t r = 0; r < rows; ++r) {
    float* prow = out.data() + r * cols;
    for (std::size_t j = 0; j < cols; ++j) prow[j] += pb[j];
  }
}

void row_sum(std::span<const float> in, std::size_t rows, std::span<float> out) {
  const std::size_t cols = out.size();
  if (in.size() != rows * cols) {
    throw std::invalid_argument("row_sum: in size " + std::to_string(in.size()) +
                                " != rows*cols " + std::to_string(rows * cols));
  }
  float* po = out.data();
  for (std::size_t r = 0; r < rows; ++r) {
    const float* prow = in.data() + r * cols;
    for (std::size_t j = 0; j < cols; ++j) po[j] += prow[j];
  }
}

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor out;
  add_into(a, b, out);
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  Tensor out;
  sub_into(a, b, out);
  return out;
}

void add_into(const Tensor& a, const Tensor& b, Tensor& out) {
  if (!a.same_shape(b)) {
    throw std::invalid_argument("add: shape mismatch " + shape_to_string(a.shape()) +
                                " vs " + shape_to_string(b.shape()));
  }
  if (!out.same_shape(a)) out = Tensor(a.shape());
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* po = out.raw();
  const std::size_t n = a.numel();
  for (std::size_t i = 0; i < n; ++i) po[i] = pa[i] + pb[i];
}

void sub_into(const Tensor& a, const Tensor& b, Tensor& out) {
  if (!a.same_shape(b)) {
    throw std::invalid_argument("sub: shape mismatch " + shape_to_string(a.shape()) +
                                " vs " + shape_to_string(b.shape()));
  }
  if (!out.same_shape(a)) out = Tensor(a.shape());
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* po = out.raw();
  const std::size_t n = a.numel();
  for (std::size_t i = 0; i < n; ++i) po[i] = pa[i] - pb[i];
}

void sub_inplace(Tensor& a, const Tensor& b) {
  if (!a.same_shape(b)) {
    throw std::invalid_argument("sub: shape mismatch " + shape_to_string(a.shape()) +
                                " vs " + shape_to_string(b.shape()));
  }
  float* pa = a.raw();
  const float* pb = b.raw();
  const std::size_t n = a.numel();
  for (std::size_t i = 0; i < n; ++i) pa[i] -= pb[i];
}

void add_scaled(Tensor& a, float alpha, const Tensor& b) {
  if (!a.same_shape(b)) {
    throw std::invalid_argument("add_scaled: shape mismatch " +
                                shape_to_string(a.shape()) + " vs " +
                                shape_to_string(b.shape()));
  }
  axpy(alpha, b.data(), a.data());
}

namespace {

void require_matrix(const Tensor& t, const char* name) {
  if (t.ndim() != 2) {
    throw std::invalid_argument(std::string("gemm: ") + name + " must be 2-D, got " +
                                shape_to_string(t.shape()));
  }
}

// ---- Blocked GEMM cores -------------------------------------------------
//
// Blocking constants. kKc k-rows of B are kept hot in L1/L2 while a panel
// of kNc output columns is updated; A rows are register-tiled kMr at a
// time and k is unrolled by kKu. The association order of every C element
// is a function of these constants only — never of thread count — so
// output is bit-stable (see the policy note in ops.hpp).
constexpr std::size_t kKc = 256;
constexpr std::size_t kNc = 512;
constexpr std::size_t kMr = 4;
constexpr std::size_t kKu = 4;

// C rows [i0, i1) of C(mxn) = A(mxk) * B(kxn). Each row's reduction is
// computed entirely by the caller's thread, which is what makes the
// parallel row-block path bit-identical to serial.
void gemm_rows(const float* __restrict__ pa, const float* __restrict__ pb,
               float* __restrict__ pc, std::size_t i0, std::size_t i1,
               std::size_t k, std::size_t n) {
  for (std::size_t jc = 0; jc < n; jc += kNc) {
    const std::size_t jb = std::min(kNc, n - jc);
    for (std::size_t kc = 0; kc < k; kc += kKc) {
      const std::size_t kend = kc + std::min(kKc, k - kc);
      const bool first = kc == 0;
      std::size_t i = i0;
      for (; i + kMr <= i1; i += kMr) {
        const float* __restrict__ a0 = pa + (i + 0) * k;
        const float* __restrict__ a1 = pa + (i + 1) * k;
        const float* __restrict__ a2 = pa + (i + 2) * k;
        const float* __restrict__ a3 = pa + (i + 3) * k;
        float* __restrict__ c0 = pc + (i + 0) * n + jc;
        float* __restrict__ c1 = pc + (i + 1) * n + jc;
        float* __restrict__ c2 = pc + (i + 2) * n + jc;
        float* __restrict__ c3 = pc + (i + 3) * n + jc;
        if (first) {
          std::fill(c0, c0 + jb, 0.0f);
          std::fill(c1, c1 + jb, 0.0f);
          std::fill(c2, c2 + jb, 0.0f);
          std::fill(c3, c3 + jb, 0.0f);
        }
        std::size_t kk = kc;
        for (; kk + kKu <= kend; kk += kKu) {
          const float a00 = a0[kk], a01 = a0[kk + 1], a02 = a0[kk + 2], a03 = a0[kk + 3];
          const float a10 = a1[kk], a11 = a1[kk + 1], a12 = a1[kk + 2], a13 = a1[kk + 3];
          const float a20 = a2[kk], a21 = a2[kk + 1], a22 = a2[kk + 2], a23 = a2[kk + 3];
          const float a30 = a3[kk], a31 = a3[kk + 1], a32 = a3[kk + 2], a33 = a3[kk + 3];
          const float* __restrict__ b0 = pb + (kk + 0) * n + jc;
          const float* __restrict__ b1 = pb + (kk + 1) * n + jc;
          const float* __restrict__ b2 = pb + (kk + 2) * n + jc;
          const float* __restrict__ b3 = pb + (kk + 3) * n + jc;
          for (std::size_t j = 0; j < jb; ++j) {
            c0[j] += a00 * b0[j] + a01 * b1[j] + a02 * b2[j] + a03 * b3[j];
            c1[j] += a10 * b0[j] + a11 * b1[j] + a12 * b2[j] + a13 * b3[j];
            c2[j] += a20 * b0[j] + a21 * b1[j] + a22 * b2[j] + a23 * b3[j];
            c3[j] += a30 * b0[j] + a31 * b1[j] + a32 * b2[j] + a33 * b3[j];
          }
        }
        for (; kk < kend; ++kk) {
          const float v0 = a0[kk], v1 = a1[kk], v2 = a2[kk], v3 = a3[kk];
          const float* __restrict__ br = pb + kk * n + jc;
          for (std::size_t j = 0; j < jb; ++j) {
            c0[j] += v0 * br[j];
            c1[j] += v1 * br[j];
            c2[j] += v2 * br[j];
            c3[j] += v3 * br[j];
          }
        }
      }
      for (; i < i1; ++i) {
        const float* __restrict__ ar = pa + i * k;
        float* __restrict__ cr = pc + i * n + jc;
        if (first) std::fill(cr, cr + jb, 0.0f);
        std::size_t kk = kc;
        for (; kk + kKu <= kend; kk += kKu) {
          const float v0 = ar[kk], v1 = ar[kk + 1], v2 = ar[kk + 2], v3 = ar[kk + 3];
          const float* __restrict__ b0 = pb + (kk + 0) * n + jc;
          const float* __restrict__ b1 = pb + (kk + 1) * n + jc;
          const float* __restrict__ b2 = pb + (kk + 2) * n + jc;
          const float* __restrict__ b3 = pb + (kk + 3) * n + jc;
          for (std::size_t j = 0; j < jb; ++j) {
            cr[j] += v0 * b0[j] + v1 * b1[j] + v2 * b2[j] + v3 * b3[j];
          }
        }
        for (; kk < kend; ++kk) {
          const float v = ar[kk];
          const float* __restrict__ br = pb + kk * n + jc;
          for (std::size_t j = 0; j < jb; ++j) cr[j] += v * br[j];
        }
      }
    }
  }
}

// Opt-in threading state for large plain GEMMs (see ops.hpp).
std::atomic<util::ThreadPool*> g_gemm_pool{nullptr};
std::atomic<std::size_t> g_gemm_min_flops{1u << 22};

}  // namespace

void set_gemm_threading(util::ThreadPool* pool, std::size_t min_flops) {
  g_gemm_min_flops.store(min_flops, std::memory_order_relaxed);
  g_gemm_pool.store(pool, std::memory_order_release);
}

void gemm(std::size_t m, std::size_t k, std::size_t n, const float* a,
          const float* b, float* c) {
  util::ThreadPool* pool = g_gemm_pool.load(std::memory_order_acquire);
  if (pool != nullptr && m >= 2 &&
      2.0 * static_cast<double>(m) * static_cast<double>(k) * static_cast<double>(n) >=
          static_cast<double>(g_gemm_min_flops.load(std::memory_order_relaxed))) {
    const std::size_t blocks =
        std::min(m, std::max<std::size_t>(1, pool->worker_count()));
    pool->parallel_for(blocks, [&](std::size_t blk) {
      const std::size_t i0 = m * blk / blocks;
      const std::size_t i1 = m * (blk + 1) / blocks;
      gemm_rows(a, b, c, i0, i1, k, n);
    });
    return;
  }
  gemm_rows(a, b, c, 0, m, k, n);
}

void gemm(const Tensor& a, const Tensor& b, Tensor& c) {
  require_matrix(a, "A");
  require_matrix(b, "B");
  require_matrix(c, "C");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k || c.dim(0) != m || c.dim(1) != n) {
    throw std::invalid_argument("gemm: incompatible shapes A" + shape_to_string(a.shape()) +
                                " B" + shape_to_string(b.shape()) + " C" +
                                shape_to_string(c.shape()));
  }
  gemm(m, k, n, a.raw(), b.raw(), c.raw());
}

namespace {

// Lane count of the dot-product accumulators in gemm_nt: 16 independent
// float chains per output (one 512-bit or two 256-bit vectors), combined
// with a fixed halving tree, scalar tail appended last.
constexpr std::size_t kDotLanes = 16;

float reduce_dot_lanes(float (&acc)[kDotLanes]) {
  for (std::size_t stride = kDotLanes / 2; stride > 0; stride /= 2) {
    for (std::size_t l = 0; l < stride; ++l) acc[l] += acc[l + stride];
  }
  return acc[0];
}

}  // namespace

void gemm_nt(std::size_t m, std::size_t k, std::size_t n, const float* a,
             const float* b, float* c) {
  constexpr std::size_t kJr = 4;  // B rows sharing one pass over an A row
  for (std::size_t i = 0; i < m; ++i) {
    const float* __restrict__ ar = a + i * k;
    float* __restrict__ cr = c + i * n;
    std::size_t j = 0;
    for (; j + kJr <= n; j += kJr) {
      const float* __restrict__ b0 = b + (j + 0) * k;
      const float* __restrict__ b1 = b + (j + 1) * k;
      const float* __restrict__ b2 = b + (j + 2) * k;
      const float* __restrict__ b3 = b + (j + 3) * k;
      float acc0[kDotLanes] = {}, acc1[kDotLanes] = {};
      float acc2[kDotLanes] = {}, acc3[kDotLanes] = {};
      std::size_t kk = 0;
      for (; kk + kDotLanes <= k; kk += kDotLanes) {
        for (std::size_t l = 0; l < kDotLanes; ++l) {
          const float av = ar[kk + l];
          acc0[l] += av * b0[kk + l];
          acc1[l] += av * b1[kk + l];
          acc2[l] += av * b2[kk + l];
          acc3[l] += av * b3[kk + l];
        }
      }
      float s0 = reduce_dot_lanes(acc0), s1 = reduce_dot_lanes(acc1);
      float s2 = reduce_dot_lanes(acc2), s3 = reduce_dot_lanes(acc3);
      for (; kk < k; ++kk) {
        const float av = ar[kk];
        s0 += av * b0[kk];
        s1 += av * b1[kk];
        s2 += av * b2[kk];
        s3 += av * b3[kk];
      }
      cr[j + 0] = s0;
      cr[j + 1] = s1;
      cr[j + 2] = s2;
      cr[j + 3] = s3;
    }
    for (; j < n; ++j) {
      const float* __restrict__ br = b + j * k;
      float acc[kDotLanes] = {};
      std::size_t kk = 0;
      for (; kk + kDotLanes <= k; kk += kDotLanes) {
        for (std::size_t l = 0; l < kDotLanes; ++l) acc[l] += ar[kk + l] * br[kk + l];
      }
      float s = reduce_dot_lanes(acc);
      for (; kk < k; ++kk) s += ar[kk] * br[kk];
      cr[j] = s;
    }
  }
}

void gemm_nt(const Tensor& a, const Tensor& b, Tensor& c) {
  require_matrix(a, "A");
  require_matrix(b, "B");
  require_matrix(c, "C");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  if (b.dim(1) != k || c.dim(0) != m || c.dim(1) != n) {
    throw std::invalid_argument("gemm_nt: incompatible shapes A" +
                                shape_to_string(a.shape()) + " B" +
                                shape_to_string(b.shape()) + " C" +
                                shape_to_string(c.shape()));
  }
  gemm_nt(m, k, n, a.raw(), b.raw(), c.raw());
}

void gemm_tn(std::size_t m, std::size_t k, std::size_t n, const float* a,
             const float* b, float* c) {
  std::fill(c, c + k * n, 0.0f);
  // Rank-kMr updates: the reduction dimension (m) is consumed in ascending
  // blocks of kMr, so every C element sees one fixed association order.
  std::size_t i = 0;
  for (; i + kMr <= m; i += kMr) {
    const float* __restrict__ a0 = a + (i + 0) * k;
    const float* __restrict__ a1 = a + (i + 1) * k;
    const float* __restrict__ a2 = a + (i + 2) * k;
    const float* __restrict__ a3 = a + (i + 3) * k;
    const float* __restrict__ b0 = b + (i + 0) * n;
    const float* __restrict__ b1 = b + (i + 1) * n;
    const float* __restrict__ b2 = b + (i + 2) * n;
    const float* __restrict__ b3 = b + (i + 3) * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float v0 = a0[kk], v1 = a1[kk], v2 = a2[kk], v3 = a3[kk];
      float* __restrict__ cr = c + kk * n;
      for (std::size_t j = 0; j < n; ++j) {
        cr[j] += v0 * b0[j] + v1 * b1[j] + v2 * b2[j] + v3 * b3[j];
      }
    }
  }
  for (; i < m; ++i) {
    const float* __restrict__ ar = a + i * k;
    const float* __restrict__ br = b + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float v = ar[kk];
      float* __restrict__ cr = c + kk * n;
      for (std::size_t j = 0; j < n; ++j) cr[j] += v * br[j];
    }
  }
}

void gemm_tn(const Tensor& a, const Tensor& b, Tensor& c) {
  require_matrix(a, "A");
  require_matrix(b, "B");
  require_matrix(c, "C");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != m || c.dim(0) != k || c.dim(1) != n) {
    throw std::invalid_argument("gemm_tn: incompatible shapes A" +
                                shape_to_string(a.shape()) + " B" +
                                shape_to_string(b.shape()) + " C" +
                                shape_to_string(c.shape()));
  }
  gemm_tn(m, k, n, a.raw(), b.raw(), c.raw());
}

// ---- Naive reference kernels (retained pre-optimization code) ----------

namespace ref {

void gemm(const Tensor& a, const Tensor& b, Tensor& c) {
  require_matrix(a, "A");
  require_matrix(b, "B");
  require_matrix(c, "C");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k || c.dim(0) != m || c.dim(1) != n) {
    throw std::invalid_argument("ref::gemm: incompatible shapes");
  }
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = pc + i * n;
    std::fill(crow, crow + n, 0.0f);
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aval = pa[i * k + kk];
      const float* brow = pb + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
    }
  }
}

void gemm_nt(const Tensor& a, const Tensor& b, Tensor& c) {
  require_matrix(a, "A");
  require_matrix(b, "B");
  require_matrix(c, "C");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  if (b.dim(1) != k || c.dim(0) != m || c.dim(1) != n) {
    throw std::invalid_argument("ref::gemm_nt: incompatible shapes");
  }
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    float* crow = pc + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      double acc = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(arow[kk]) * static_cast<double>(brow[kk]);
      }
      crow[j] = static_cast<float>(acc);
    }
  }
}

void gemm_tn(const Tensor& a, const Tensor& b, Tensor& c) {
  require_matrix(a, "A");
  require_matrix(b, "B");
  require_matrix(c, "C");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != m || c.dim(0) != k || c.dim(1) != n) {
    throw std::invalid_argument("ref::gemm_tn: incompatible shapes");
  }
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  std::fill(pc, pc + k * n, 0.0f);
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    const float* brow = pb + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aval = arow[kk];
      float* crow = pc + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
    }
  }
}

}  // namespace ref

void im2col(std::span<const float> image, const Conv2dGeometry& geo,
            std::span<float> columns) {
  const std::size_t oh = geo.out_h();
  const std::size_t ow = geo.out_w();
  const std::size_t expected_image = geo.in_channels * geo.in_h * geo.in_w;
  const std::size_t expected_cols = geo.in_channels * geo.kernel_h * geo.kernel_w * oh * ow;
  if (image.size() != expected_image) {
    throw std::invalid_argument("im2col: image size " + std::to_string(image.size()) +
                                " != expected " + std::to_string(expected_image));
  }
  if (columns.size() != expected_cols) {
    throw std::invalid_argument("im2col: columns size " + std::to_string(columns.size()) +
                                " != expected " + std::to_string(expected_cols));
  }
  std::size_t row = 0;
  for (std::size_t c = 0; c < geo.in_channels; ++c) {
    for (std::size_t kh = 0; kh < geo.kernel_h; ++kh) {
      for (std::size_t kw = 0; kw < geo.kernel_w; ++kw, ++row) {
        float* out_row = columns.data() + row * oh * ow;
        for (std::size_t y = 0; y < oh; ++y) {
          const long in_y = static_cast<long>(y * geo.stride + kh) - static_cast<long>(geo.pad);
          if (in_y < 0 || in_y >= static_cast<long>(geo.in_h)) {
            std::fill(out_row + y * ow, out_row + (y + 1) * ow, 0.0f);
            continue;
          }
          const float* img_row =
              image.data() + (c * geo.in_h + static_cast<std::size_t>(in_y)) * geo.in_w;
          float* dst = out_row + y * ow;
          if (geo.pad == 0 && geo.stride == 1) {
            // Fast path: the kernel-window row is a contiguous slice.
            std::copy(img_row + kw, img_row + kw + ow, dst);
            continue;
          }
          for (std::size_t x = 0; x < ow; ++x) {
            const long in_x = static_cast<long>(x * geo.stride + kw) - static_cast<long>(geo.pad);
            float v = 0.0f;
            if (in_x >= 0 && in_x < static_cast<long>(geo.in_w)) {
              v = img_row[static_cast<std::size_t>(in_x)];
            }
            dst[x] = v;
          }
        }
      }
    }
  }
}

void col2im(std::span<const float> columns, const Conv2dGeometry& geo,
            std::span<float> image_grad) {
  const std::size_t oh = geo.out_h();
  const std::size_t ow = geo.out_w();
  const std::size_t expected_image = geo.in_channels * geo.in_h * geo.in_w;
  const std::size_t expected_cols = geo.in_channels * geo.kernel_h * geo.kernel_w * oh * ow;
  if (image_grad.size() != expected_image) {
    throw std::invalid_argument("col2im: image size " + std::to_string(image_grad.size()) +
                                " != expected " + std::to_string(expected_image));
  }
  if (columns.size() != expected_cols) {
    throw std::invalid_argument("col2im: columns size " + std::to_string(columns.size()) +
                                " != expected " + std::to_string(expected_cols));
  }
  std::size_t row = 0;
  for (std::size_t c = 0; c < geo.in_channels; ++c) {
    for (std::size_t kh = 0; kh < geo.kernel_h; ++kh) {
      for (std::size_t kw = 0; kw < geo.kernel_w; ++kw, ++row) {
        const float* in_row = columns.data() + row * oh * ow;
        for (std::size_t y = 0; y < oh; ++y) {
          const long in_y = static_cast<long>(y * geo.stride + kh) - static_cast<long>(geo.pad);
          if (in_y < 0 || in_y >= static_cast<long>(geo.in_h)) continue;
          for (std::size_t x = 0; x < ow; ++x) {
            const long in_x = static_cast<long>(x * geo.stride + kw) - static_cast<long>(geo.pad);
            if (in_x < 0 || in_x >= static_cast<long>(geo.in_w)) continue;
            image_grad[(c * geo.in_h + static_cast<std::size_t>(in_y)) * geo.in_w +
                       static_cast<std::size_t>(in_x)] += in_row[y * ow + x];
          }
        }
      }
    }
  }
}

}  // namespace fedca::tensor
