// End-to-end experiment driver: dataset synthesis, partitioning, cluster
// construction, round loop, evaluation, and time-to-accuracy accounting.
//
// This is the harness behind Fig. 7 / Table 1 and every downstream bench:
// run a scheme on a workload until the target accuracy (or a round cap),
// recording the accuracy trajectory over *virtual* time plus per-round
// behavioural summaries (early-stop moments, eager transmissions) that
// Figs. 8-10 consume.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "fl/round_engine.hpp"
#include "fl/scheme.hpp"
#include "nn/models.hpp"
#include "sim/cluster.hpp"

namespace fedca::fl {

struct ExperimentOptions {
  nn::ModelKind model = nn::ModelKind::kCnn;
  std::size_t num_clients = 24;
  // Number of distinct data shards. 0 (default) partitions one shard per
  // client; a smaller pool lets million-client populations share shards
  // (client c reads shard c % shard_pool) so data stays O(pool), not
  // O(clients). Requires the compact cluster registry when < num_clients.
  std::size_t shard_pool = 0;
  std::size_t local_iterations = 40;   // K
  std::size_t batch_size = 16;
  double dirichlet_alpha = 0.1;
  std::size_t train_samples = 3000;
  std::size_t test_samples = 512;
  data::SyntheticSpec data_spec;       // num_classes/noise; samples overridden
  nn::SgdOptions optimizer{0.05, 0.0, 0.0};
  double collect_fraction = 0.9;
  // Fraction of clients selected each round (1.0 = full participation,
  // the paper's setting; < 1 enables Oort-style partial participation).
  double participation_fraction = 1.0;
  // Round-relative upload cut-off (see RoundEngineOptions::upload_timeout).
  double upload_timeout = kNoDeadline;
  // Wire format for eager layer transmissions (see
  // RoundEngineOptions::eager_wire): kInt8 quantizes each eager layer to
  // int8 codes, ~4x fewer bytes, residual corrected by error feedback.
  EagerWire eager_wire = EagerWire::kFp32;
  // Fault injection (disabled by default: `faults.enabled == false` keeps
  // the run bit-identical to a build without the fault layer).
  sim::FaultScheduleOptions faults;
  std::size_t max_rounds = 150;
  // Stop as soon as the smoothed accuracy reaches this value; <= 0 runs to
  // max_rounds.
  double target_accuracy = 0.0;
  std::size_t accuracy_smoothing = 3;  // rounds averaged for the stop check
  std::size_t eval_every = 1;          // rounds between evaluations
  sim::ClusterOptions cluster;
  // Worker threads for concurrent client training (see
  // RoundEngineOptions::worker_threads): 0 = FEDCA_THREADS env var or
  // hardware concurrency, 1 = serial. Output is bit-identical either way.
  std::size_t worker_threads = 0;
  // Tensor buffer pool (tensor/pool.hpp): 1 = on, 0 = off, negative =
  // consult the FEDCA_TENSOR_POOL env var (the default). Recycling never
  // changes computed values — output is bit-identical on or off.
  int tensor_pool = -1;
  std::uint64_t seed = 42;
  // Observability. Non-empty paths arm the corresponding output; the
  // FEDCA_TRACE / FEDCA_METRICS / FEDCA_REPORT environment variables fill
  // any left empty here (explicit options win). Tracing, metrics and the
  // round report have near-zero cost when disarmed.
  std::string trace_path;
  std::string metrics_path;
  std::string report_path;  // run_report.jsonl (see obs/round_report.hpp)
};

// Per-client behavioural summary of one round — everything the figures
// need, with the heavy update tensors stripped.
struct ClientRoundSummary {
  std::size_t client_id = 0;
  std::size_t iterations_run = 0;
  std::size_t planned_iterations = 0;
  bool early_stopped = false;
  double arrival_time = 0.0;
  double compute_seconds = 0.0;
  double bytes_sent = 0.0;
  double eager_bytes = 0.0;  // eager-transmission share of bytes_sent
  bool collected = false;
  // Normalized aggregation weight when collected (0 otherwise); the
  // collected weights of a round sum to 1.
  double collected_weight = 0.0;
  bool failed = false;  // fault injection: client delivered nothing
  struct EagerSummary {
    std::size_t layer = 0;
    std::size_t iteration = 0;
    bool retransmitted = false;
  };
  std::vector<EagerSummary> eager;
};

struct RoundSummary {
  std::size_t round_index = 0;
  double start_time = 0.0;
  double end_time = 0.0;
  double deadline = kNoDeadline;
  std::vector<ClientRoundSummary> clients;
  double duration() const { return end_time - start_time; }
};

struct ExperimentResult {
  std::string scheme_name;
  std::string model_name;
  std::vector<EvalPoint> curve;          // accuracy trajectory
  std::vector<RoundSummary> rounds;
  bool reached_target = false;
  double time_to_target = 0.0;           // virtual seconds (valid if reached)
  std::size_t rounds_to_target = 0;
  double total_time = 0.0;               // virtual end time of the run
  double mean_round_seconds = 0.0;
  double final_accuracy = 0.0;

  // Flattened behaviour samples for Fig. 8-style CDFs.
  std::vector<double> early_stop_iterations() const;
  // Eager-transmission trigger iterations; when `effective_with_retrans` a
  // retransmitted layer counts at the client's last iteration (as in
  // Fig. 8b), otherwise at its original trigger iteration.
  std::vector<double> eager_iterations(bool effective_with_retrans) const;
};

// Runs one experiment. The scheme is owned by the caller (schemes are
// stateful; use a fresh instance per run).
ExperimentResult run_experiment(const ExperimentOptions& options, Scheme& scheme);

// Shared plumbing for benches that drive rounds manually (fig2-fig5).
struct ExperimentSetup {
  std::unique_ptr<nn::Classifier> model;
  std::unique_ptr<sim::Cluster> cluster;
  std::vector<data::Dataset> shards;
  data::Dataset test_set;
  std::unique_ptr<RoundEngine> engine;  // wired to `scheme`
  // Non-null iff options.faults.enabled; also installed on `cluster`.
  std::shared_ptr<const sim::FaultInjector> faults;
};

ExperimentSetup make_setup(const ExperimentOptions& options, Scheme& scheme);

// Evaluates the current global model of `setup` on its test set.
nn::Classifier::EvalResult evaluate_global(ExperimentSetup& setup);

}  // namespace fedca::fl
