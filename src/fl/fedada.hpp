// FedAda baseline, reimplemented from the FedCA paper's description.
//
// FedAda (Zhang et al., WWW 2022) is the paper's strongest baseline: "the
// FL server adaptively adjusts the intra-round workloads of the straggling
// clients", "assuming homogeneous statistical contribution for each
// iteration", with "the trade-off factor between computation cost and
// statistical benefit set to the recommended value 0.5" (Secs. 2.2, 3.1,
// 5.1). The defining contrasts with FedCA:
//   * decisions are made on the *server* from cross-round speed estimates —
//     a client slowed mid-round still runs its pre-assigned budget;
//   * every iteration is assumed equally valuable, so workload scaling is
//     linear in time with no curve knowledge.
//
// Our reconstruction: the server estimates each client's per-iteration
// seconds from its recent rounds and sets
//     K_i = clamp(round(w * K + (1 - w) * T_R / est_i), K_min, K)
// with w the 0.5 trade-off factor — a blend between the full statistical
// budget (benefit term) and the largest workload that fits the
// FedBalancer-style deadline (cost term). Fast clients keep K; stragglers
// are trimmed toward deadline-fitting workloads.
#pragma once

#include <vector>

#include "fl/deadline.hpp"
#include "fl/scheme.hpp"

namespace fedca::fl {

struct FedAdaOptions {
  // Trade-off factor between statistical benefit and computation cost.
  double tradeoff = 0.5;
  // Never trim a client below this fraction of K.
  double min_fraction = 0.2;
  // Rounds of speed history blended into the estimate (EWMA factor).
  double speed_ewma = 0.5;
};

class FedAdaScheme : public Scheme {
 public:
  explicit FedAdaScheme(FedAdaOptions options = {});

  std::string name() const override { return "FedAda"; }
  void bind(std::size_t num_clients, std::size_t nominal_iterations) override;
  RoundPlan plan_round(std::size_t round_index) override;
  void observe_round(const RoundRecord& record) override;

  // Exposed for tests.
  double estimated_iteration_seconds(std::size_t client_id) const;

 private:
  FedAdaOptions options_;
  DeadlineEstimator deadline_;
  // EWMA of observed seconds-per-iteration per client; <= 0 means unknown.
  std::vector<double> est_iter_seconds_;
};

}  // namespace fedca::fl
