#include "fl/aggregation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace fedca::fl {

std::size_t collect_quota(std::size_t quota_base, double fraction) {
  fraction = std::clamp(fraction, 1e-9, 1.0);
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(fraction * static_cast<double>(quota_base))));
}

std::vector<std::size_t> select_earliest(const std::vector<ClientRoundResult>& results,
                                         double fraction) {
  if (results.empty()) return {};
  std::vector<std::size_t> all(results.size());
  std::iota(all.begin(), all.end(), 0);
  return select_earliest(results, all, results.size(), fraction);
}

std::vector<std::size_t> select_earliest(const std::vector<ClientRoundResult>& results,
                                         const std::vector<std::size_t>& candidates,
                                         std::size_t quota_base, double fraction) {
  if (candidates.empty()) return {};
  const std::size_t quota = collect_quota(quota_base, fraction);
  std::vector<std::size_t> order = candidates;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (results[a].arrival_time != results[b].arrival_time) {
      return results[a].arrival_time < results[b].arrival_time;
    }
    return results[a].client_id < results[b].client_id;
  });
  if (order.size() > quota) order.resize(quota);
  std::sort(order.begin(), order.end());
  return order;
}

std::vector<double> apply_aggregated_update(nn::ModelState& global,
                                            const std::vector<ClientRoundResult>& results,
                                            const std::vector<std::size_t>& selected) {
  if (selected.empty()) {
    throw std::invalid_argument("apply_aggregated_update: empty selection");
  }
  double total_weight = 0.0;
  for (const std::size_t idx : selected) {
    total_weight += results.at(idx).weight;
  }
  if (total_weight <= 0.0) {
    throw std::invalid_argument("apply_aggregated_update: nonpositive total weight");
  }
  std::vector<double> normalized;
  normalized.reserve(selected.size());
  for (const std::size_t idx : selected) {
    const ClientRoundResult& r = results.at(idx);
    if (!r.applied_update.same_layout(global)) {
      throw std::invalid_argument("apply_aggregated_update: layout mismatch for client " +
                                  std::to_string(r.client_id));
    }
    const double share = r.weight / total_weight;
    nn::state_add_scaled(global, static_cast<float>(share), r.applied_update);
    normalized.push_back(share);
  }
  return normalized;
}

StreamingQuorum::StreamingQuorum(std::vector<ClientRoundResult>* results,
                                 std::size_t quota, double timeout_cut)
    : results_(results), quota_(quota), timeout_cut_(timeout_cut) {
  if (results_ == nullptr) {
    throw std::invalid_argument("StreamingQuorum: null results");
  }
  heap_.reserve(std::min(quota_, results_->size()));
}

bool StreamingQuorum::eligible(const ClientRoundResult& r) const {
  // Mirrors the main thread's candidate filter bit for bit.
  if (r.failed || !std::isfinite(r.arrival_time)) return false;
  return !(r.arrival_time > timeout_cut_);
}

void StreamingQuorum::discard(ClientRoundResult& r) {
  r.applied_update = nn::ModelState{};
  for (EagerRecord& e : r.eager) e.value = tensor::Tensor{};
}

void StreamingQuorum::offer(std::size_t index) {
  std::vector<ClientRoundResult>& results = *results_;
  // select_earliest's strict total order. Used as the heap comparator it
  // puts the latest retained entry at the front (evicted first).
  const auto earlier = [&results](std::size_t a, std::size_t b) {
    if (results[a].arrival_time != results[b].arrival_time) {
      return results[a].arrival_time < results[b].arrival_time;
    }
    return results[a].client_id < results[b].client_id;
  };
  util::MutexLock lock(mutex_);
  if (!eligible(results[index])) {
    discard(results[index]);
    return;
  }
  if (heap_.size() < quota_) {
    heap_.push_back(index);
    std::push_heap(heap_.begin(), heap_.end(), earlier);
    return;
  }
  // Full: either the newcomer or the current latest retained entry goes.
  if (!earlier(index, heap_.front())) {
    discard(results[index]);
    return;
  }
  std::pop_heap(heap_.begin(), heap_.end(), earlier);
  discard(results[heap_.back()]);
  heap_.back() = index;
  std::push_heap(heap_.begin(), heap_.end(), earlier);
}

}  // namespace fedca::fl
