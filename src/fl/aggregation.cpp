#include "fl/aggregation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace fedca::fl {

std::vector<std::size_t> select_earliest(const std::vector<ClientRoundResult>& results,
                                         double fraction) {
  if (results.empty()) return {};
  fraction = std::clamp(fraction, 1e-9, 1.0);
  const auto quota = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(results.size())));
  std::vector<std::size_t> order(results.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (results[a].arrival_time != results[b].arrival_time) {
      return results[a].arrival_time < results[b].arrival_time;
    }
    return results[a].client_id < results[b].client_id;
  });
  order.resize(std::max<std::size_t>(1, quota));
  std::sort(order.begin(), order.end());
  return order;
}

void apply_aggregated_update(nn::ModelState& global,
                             const std::vector<ClientRoundResult>& results,
                             const std::vector<std::size_t>& selected) {
  if (selected.empty()) {
    throw std::invalid_argument("apply_aggregated_update: empty selection");
  }
  double total_weight = 0.0;
  for (const std::size_t idx : selected) {
    total_weight += results.at(idx).weight;
  }
  if (total_weight <= 0.0) {
    throw std::invalid_argument("apply_aggregated_update: nonpositive total weight");
  }
  for (const std::size_t idx : selected) {
    const ClientRoundResult& r = results.at(idx);
    if (!r.applied_update.same_layout(global)) {
      throw std::invalid_argument("apply_aggregated_update: layout mismatch for client " +
                                  std::to_string(r.client_id));
    }
    const auto scale = static_cast<float>(r.weight / total_weight);
    nn::state_add_scaled(global, scale, r.applied_update);
  }
}

}  // namespace fedca::fl
