#include "fl/aggregation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace fedca::fl {

std::vector<std::size_t> select_earliest(const std::vector<ClientRoundResult>& results,
                                         double fraction) {
  if (results.empty()) return {};
  std::vector<std::size_t> all(results.size());
  std::iota(all.begin(), all.end(), 0);
  return select_earliest(results, all, results.size(), fraction);
}

std::vector<std::size_t> select_earliest(const std::vector<ClientRoundResult>& results,
                                         const std::vector<std::size_t>& candidates,
                                         std::size_t quota_base, double fraction) {
  if (candidates.empty()) return {};
  fraction = std::clamp(fraction, 1e-9, 1.0);
  const auto quota = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(fraction * static_cast<double>(quota_base))));
  std::vector<std::size_t> order = candidates;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (results[a].arrival_time != results[b].arrival_time) {
      return results[a].arrival_time < results[b].arrival_time;
    }
    return results[a].client_id < results[b].client_id;
  });
  if (order.size() > quota) order.resize(quota);
  std::sort(order.begin(), order.end());
  return order;
}

std::vector<double> apply_aggregated_update(nn::ModelState& global,
                                            const std::vector<ClientRoundResult>& results,
                                            const std::vector<std::size_t>& selected) {
  if (selected.empty()) {
    throw std::invalid_argument("apply_aggregated_update: empty selection");
  }
  double total_weight = 0.0;
  for (const std::size_t idx : selected) {
    total_weight += results.at(idx).weight;
  }
  if (total_weight <= 0.0) {
    throw std::invalid_argument("apply_aggregated_update: nonpositive total weight");
  }
  std::vector<double> normalized;
  normalized.reserve(selected.size());
  for (const std::size_t idx : selected) {
    const ClientRoundResult& r = results.at(idx);
    if (!r.applied_update.same_layout(global)) {
      throw std::invalid_argument("apply_aggregated_update: layout mismatch for client " +
                                  std::to_string(r.client_id));
    }
    const double share = r.weight / total_weight;
    nn::state_add_scaled(global, static_cast<float>(share), r.applied_update);
    normalized.push_back(share);
  }
  return normalized;
}

}  // namespace fedca::fl
