#include "fl/compression.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "tensor/ops.hpp"
#include "tensor/pool.hpp"

namespace fedca::fl {

double IdentityCompressor::compress(tensor::Tensor& layer_update,
                                    double bytes_per_param) {
  return static_cast<double>(layer_update.numel()) * bytes_per_param;
}

QsgdQuantizer::QsgdQuantizer(std::size_t levels, util::Rng rng)
    : levels_(levels), rng_(rng) {
  if (levels_ == 0) throw std::invalid_argument("QsgdQuantizer: levels must be >= 1");
}

std::string QsgdQuantizer::name() const {
  return "qsgd" + std::to_string(levels_);
}

double QsgdQuantizer::bits_per_element() const {
  // Sign bit + ceil(log2(levels + 1)) magnitude bits.
  return 1.0 + std::ceil(std::log2(static_cast<double>(levels_) + 1.0));
}

double QsgdQuantizer::compress(tensor::Tensor& layer_update, double bytes_per_param) {
  if (layer_update.numel() == 0) return 0.0;  // nothing on the wire
  const double norm = tensor::l2_norm(layer_update.data());
  if (norm > 0.0) {
    const auto s = static_cast<double>(levels_);
    for (std::size_t i = 0; i < layer_update.numel(); ++i) {
      const float v = layer_update[i];
      const double ratio = std::abs(static_cast<double>(v)) / norm;  // in [0, 1]
      const double scaled = ratio * s;
      double level = std::floor(scaled);
      // Stochastic rounding keeps the estimator unbiased.
      if (rng_.uniform() < scaled - level) level += 1.0;
      const double magnitude = norm * level / s;
      layer_update[i] = static_cast<float>(v < 0.0f ? -magnitude : magnitude);
    }
  }
  // Wire: norm (one float32) + per-element sign/level code. The
  // bytes_per_param scale maps native scalars to paper-scale wire cost, so
  // apply the same compression ratio to it.
  const double ratio = bits_per_element() / 32.0;
  return 4.0 + static_cast<double>(layer_update.numel()) * bytes_per_param * ratio;
}

TopKSparsifier::TopKSparsifier(double fraction) : fraction_(fraction) {
  if (fraction_ <= 0.0 || fraction_ > 1.0) {
    throw std::invalid_argument("TopKSparsifier: fraction must be in (0, 1]");
  }
}

std::string TopKSparsifier::name() const {
  return "topk" + std::to_string(fraction_);
}

double TopKSparsifier::compress(tensor::Tensor& layer_update, double bytes_per_param) {
  const std::size_t n = layer_update.numel();
  if (n == 0) return 0.0;  // k = max(1, 0) would bill bytes for no payload
  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(fraction_ * static_cast<double>(n)));
  if (k < n) {
    // Threshold = k-th largest magnitude. The scratch panel is recycled
    // through the tensor buffer pool (fully overwritten before use).
    std::vector<float> magnitudes = tensor::pool_acquire(n);
    for (std::size_t i = 0; i < n; ++i) magnitudes[i] = std::abs(layer_update[i]);
    std::nth_element(magnitudes.begin(), magnitudes.begin() + (k - 1), magnitudes.end(),
                     std::greater<float>());
    const float threshold = magnitudes[k - 1];
    tensor::pool_release(std::move(magnitudes));
    // Keep exactly k entries (ties broken by index order).
    std::size_t kept = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const bool keep = std::abs(layer_update[i]) >= threshold && kept < k;
      if (keep) {
        ++kept;
      } else {
        layer_update[i] = 0.0f;
      }
    }
  }
  // Wire: value + index per kept entry (index costed like a scalar).
  return static_cast<double>(k) * bytes_per_param * 2.0;
}

double Int8Quantizer::compress(tensor::Tensor& layer_update,
                               double bytes_per_param) {
  const std::size_t n = layer_update.numel();
  if (n == 0) return 0.0;  // nothing on the wire
  const tensor::QuantParams p = tensor::compute_quant_params(layer_update.data());
  tensor::fake_quantize_int8(layer_update.data(), p);
  // Wire: scale + zero-point header, then one int8 code per element. The
  // bytes_per_param scale maps native scalars to paper-scale wire cost.
  const double ratio = bits_per_element() / 32.0;
  return header_bytes() + static_cast<double>(n) * bytes_per_param * ratio;
}

EagerWire parse_eager_wire(const std::string& name) {
  if (name == "fp32") return EagerWire::kFp32;
  if (name == "int8") return EagerWire::kInt8;
  throw std::invalid_argument("parse_eager_wire: expected fp32 or int8, got '" +
                              name + "'");
}

const char* eager_wire_name(EagerWire wire) {
  return wire == EagerWire::kInt8 ? "int8" : "fp32";
}

std::unique_ptr<UpdateCompressor> make_compressor(const std::string& kind,
                                                  std::size_t qsgd_levels,
                                                  double topk_fraction, util::Rng rng) {
  if (kind == "none" || kind.empty()) return std::make_unique<IdentityCompressor>();
  if (kind == "qsgd") return std::make_unique<QsgdQuantizer>(qsgd_levels, rng);
  if (kind == "topk") return std::make_unique<TopKSparsifier>(topk_fraction);
  if (kind == "int8") return std::make_unique<Int8Quantizer>();
  throw std::invalid_argument("make_compressor: unknown kind '" + kind + "'");
}

}  // namespace fedca::fl
