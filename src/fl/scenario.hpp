// Scenario DSL, FL binding: maps a parsed scenario document (see
// src/sim/scenario.hpp for the grammar) onto ExperimentOptions + scheme
// selection, serializes canonically, and implements the three-tier
// precedence contract
//
//     scenario file  <  FEDCA_* environment  <  programmatic override.
//
// load_scenario_file()/parse_scenario() read ONLY the file (the scenario
// tier) — tests that must be hermetic from the caller's environment use
// Scenario::options directly. resolve_options() overlays the environment
// tier (FEDCA_TRACE / FEDCA_METRICS / FEDCA_REPORT / FEDCA_THREADS /
// FEDCA_TENSOR_POOL); callers apply the programmatic tier by mutating the
// returned struct, which trivially wins. This is consistent with the
// pre-scenario contract pinned by tests/fl/options_precedence_test.cpp:
// explicit ExperimentOptions fields beat the environment, and the
// environment beats a scenario file.
//
// Format reference (version 1; every key optional unless noted, defaults
// are the ExperimentOptions defaults — see README "Scenarios"):
//
//   [scenario] version (required, = 1), name, description
//   [run]      seed, engine (round|async), rounds, target_accuracy,
//              accuracy_smoothing, eval_every, workers,
//              tensor_pool (auto|on|off)
//   [model]    kind (cnn|lstm|wrn), classes, noise, amplitude_lo,
//              amplitude_hi
//   [data]     clients, train_samples, test_samples, alpha, batch
//   [training] local_iterations, lr, weight_decay, prox_mu
//   [server]   collect_fraction, participation, upload_timeout
//              (seconds or `none`)
//   [scheme]   name (fedavg|fedprox|fedada|fedca[_v1|_v2|_v3]|fedca_lr)
//              plus whitelisted hyperparameter passthrough keys
//              (fedca_*, fedprox_mu, fedada_*, compress*)
//   [cluster]  link_latency, speed_sigma, min_speed, max_speed,
//              bandwidth_mbps, dynamicity, slowdown_lo, slowdown_hi
//   [population] registry (compact client records + pooled device
//              replicas), availability, mean_on, mean_off, day_period,
//              day_amplitude, outage_groups, outage_rate, outage_mean,
//              seed
//   [faults]   enabled, horizon, crash_fraction, dropouts_per_client,
//              dropout_mean, slowdowns_per_client, slowdown_mean,
//              slowdown_factor_lo, slowdown_factor_hi,
//              link_faults_per_client, link_fault_mean, link_factor_lo,
//              link_factor_hi, eager_loss, eager_truncate, seed
//   [async]    updates, local_iterations, batch, mix, staleness_power,
//              cycle_timeout (engine = async only)
//   [observability] trace, metrics, report (output paths; committed
//              scenarios leave these to the env/override tiers)
//
// Unknown sections and keys are hard errors with file:line diagnostics.
// Round trip: to_string(parse(s)) is canonical and idempotent —
// to_string(parse(s)) == to_string(parse(to_string(parse(s)))).
#pragma once

#include <map>
#include <string>

#include "fl/async_engine.hpp"
#include "fl/experiment.hpp"
#include "util/config.hpp"

namespace fedca::fl {

// A fully-resolved scenario: everything a run needs, scenario tier only.
struct Scenario {
  std::string name;
  std::string description;
  std::string scheme = "fedavg";
  // Whitelisted [scheme] hyperparameters, passed to core::make_scheme via
  // scheme_config() (kept as strings — util::Config is string-typed).
  std::map<std::string, std::string> scheme_params;
  // [run] engine: false = synchronous RoundEngine via run_experiment(),
  // true = AsyncEngine driven for `async_updates` updates.
  bool async_engine = false;
  std::size_t async_updates = 16;
  AsyncEngineOptions async;  // [async] knobs (optimizer/worker filled at run)
  ExperimentOptions options;
};

// Parses scenario text / a scenario file. Throws sim::scenario::
// ScenarioError (file:line in what()) on any grammar, type, range,
// unknown-key, or unknown-section violation.
Scenario parse_scenario(const std::string& text,
                        const std::string& filename = "<scenario>");
Scenario load_scenario_file(const std::string& path);

// Canonical serialization: fixed section and key order, every effective
// key emitted explicitly, shortest round-trip number formatting, empty/
// disabled optional sections omitted. parse(to_string(s)) == s.
std::string to_string(const Scenario& scenario);

// Environment tier: the scenario's options with FEDCA_TRACE /
// FEDCA_METRICS / FEDCA_REPORT / FEDCA_THREADS / FEDCA_TENSOR_POOL
// overrides applied on top. Mutate the result for programmatic overrides.
ExperimentOptions resolve_options(const Scenario& scenario);

// Config for core::make_scheme carrying the scenario's [scheme] params.
util::Config scheme_config(const Scenario& scenario);

}  // namespace fedca::fl
