// Scheme and client-policy interfaces — where FL algorithms plug in.
//
// A Scheme is the algorithm under test (FedAvg, FedProx, FedAda, FedCA,
// ...). It has a server half — per-round planning: deadlines and
// per-client iteration caps — and a client half: one stateful ClientPolicy
// per client that observes every local iteration and may exercise the two
// client-autonomy levers the round engine exposes:
//   * stopping local training (computation optimization, Sec. 4.2), and
//   * eagerly transmitting chosen layers (communication optimization,
//     Sec. 4.3), plus end-of-round retransmission selection.
// Server-autocratic baselines simply leave the hooks at their defaults.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fl/compression.hpp"
#include "fl/types.hpp"
#include "nn/module.hpp"
#include "nn/sgd.hpp"
#include "nn/state.hpp"

namespace fedca::fl {

// Immutable per-round facts a policy can rely on.
struct RoundInfo {
  std::size_t round_index = 0;
  double start_time = 0.0;          // virtual time of round start
  double deadline = kNoDeadline;    // absolute virtual deadline (start + T_R)
  std::size_t planned_iterations = 0;  // this client's iteration budget K_i
  std::size_t nominal_iterations = 0;  // the global default K
};

// Snapshot handed to ClientPolicy::after_iteration.
struct IterationView {
  std::size_t iteration = 0;        // 1-based tau, <= planned_iterations
  double now = 0.0;                 // virtual time at end of this iteration
  double train_start = 0.0;         // virtual time local training began
  const RoundInfo* round = nullptr;
  const nn::ModelState* round_start = nullptr;  // w_0 (global at download)
  nn::Module* model = nullptr;      // live local parameters (w_tau)

  // Local wall-clock spent training so far (t_{R,tau} of Eq. 3).
  double elapsed() const { return now - train_start; }
};

// What a policy wants after an iteration.
struct IterationDecision {
  bool stop = false;
  // Layer indices (into the model's parameter list) to transmit eagerly
  // right now. The engine snapshots the current per-layer update and
  // schedules the transfer; a layer may be eagerly sent at most once per
  // round (the engine enforces this).
  std::vector<std::size_t> eager_layers;
  // Multiplier on the round's base learning rate for the REMAINING local
  // iterations (1.0 = unchanged). This is the intra-round hyperparameter
  // autonomy sketched as future work in the paper's Sec. 6; the engine
  // applies it to the local optimizer immediately.
  double lr_scale = 1.0;
  // Observability annotations explaining this decision (e.g. FedCA's
  // b/c/n utility terms behind a stop). Policies fill this only when the
  // obs trace collector is armed; the engine attaches them to the emitted
  // trace events. Never read by the algorithm itself.
  std::vector<std::pair<std::string, double>> trace_annotations;
};

// Per-client, stateful across rounds (this is where FedCA's profiling
// memory lives).
class ClientPolicy {
 public:
  virtual ~ClientPolicy() = default;

  virtual void on_round_start(const RoundInfo& /*round*/,
                              const nn::ModelState& /*global*/) {}

  virtual IterationDecision after_iteration(const IterationView& /*view*/) {
    return {};
  }

  // Called once local training halted (at iteration F). `final_update` is
  // the complete per-layer accumulated update; `eager` lists the layers
  // sent early with the exact values that went out. Returns the layer
  // indices to retransmit (Eq. 6). Default: none.
  virtual std::vector<std::size_t> select_retransmissions(
      const nn::ModelState& /*final_update*/, const std::vector<EagerRecord>& /*eager*/) {
    return {};
  }

  virtual void on_round_end(const RoundInfo& /*round*/) {}
};

// Server-side per-round plan.
struct RoundPlan {
  // Round-relative deadline T_R handed to clients (kNoDeadline if none).
  double deadline = kNoDeadline;
  // Iteration budget per client (size == num_clients). Baselines use the
  // global K everywhere; FedAda caps stragglers.
  std::vector<std::size_t> iterations;
};

// Thread-safety contract (parallel client training): the round engines may
// call client_policy(c), local_optimizer(...) and make_compressor(c, r) —
// and drive the returned policies/compressors — concurrently from worker
// threads, with at most one thread per client id. Implementations must
// therefore (a) keep per-client state inside the per-client policy object,
// (b) make local_optimizer a pure function of its argument + immutable
// scheme config, and (c) derive any compressor randomness from (client_id,
// round_index) instead of drawing from a shared stream. plan_round and
// observe_round are only ever called from the engine thread, between
// rounds — server-side mutable state belongs there.
class Scheme {
 public:
  virtual ~Scheme() = default;

  virtual std::string name() const = 0;

  // Called once before the first round.
  virtual void bind(std::size_t num_clients, std::size_t nominal_iterations) {
    num_clients_ = num_clients;
    nominal_iterations_ = nominal_iterations;
  }

  // Server-side planning at round start.
  virtual RoundPlan plan_round(std::size_t round_index);

  // The policy instance driving client `client_id` (owned by the scheme).
  virtual ClientPolicy& client_policy(std::size_t client_id);

  // Local optimizer settings (FedProx raises prox_mu).
  virtual nn::SgdOptions local_optimizer(const nn::SgdOptions& base) { return base; }

  // Feedback after each round — schemes update their server knowledge
  // (deadline estimators, client speed estimates) here.
  virtual void observe_round(const RoundRecord& /*record*/) {}

  // Optional per-(client, round) update codec for quantization or
  // sparsification; nullptr means uncompressed float32 uploads. The engine
  // applies the codec to every transmitted layer (eager and final).
  virtual std::unique_ptr<UpdateCompressor> make_compressor(
      std::size_t /*client_id*/, std::size_t /*round_index*/) {
    return nullptr;
  }

 protected:
  std::size_t num_clients_ = 0;
  std::size_t nominal_iterations_ = 0;

 private:
  // A single default no-op policy shared by baseline schemes.
  ClientPolicy default_policy_;
};

// --- Baselines ---

// FedAvg (McMahan et al.): full K iterations, no deadline, plain SGD.
class FedAvgScheme : public Scheme {
 public:
  std::string name() const override { return "FedAvg"; }
};

// FedProx (Li et al.): FedAvg plus a proximal term mu/2 ||w - w_global||^2
// in the local objective.
class FedProxScheme : public Scheme {
 public:
  explicit FedProxScheme(double mu = 0.01) : mu_(mu) {}
  std::string name() const override { return "FedProx"; }
  nn::SgdOptions local_optimizer(const nn::SgdOptions& base) override {
    nn::SgdOptions opts = base;
    opts.prox_mu = mu_;
    return opts;
  }

 private:
  double mu_;
};

// Decorator adding update compression (quantization / sparsification) to
// any scheme — the "orthogonal methods" of the paper's Secs. 2.2 & 6.
// Delegates all algorithmic behaviour to the wrapped scheme.
class CompressedScheme : public Scheme {
 public:
  struct CompressionSpec {
    std::string kind = "qsgd";  // "qsgd" | "topk"
    std::size_t qsgd_levels = 128;
    double topk_fraction = 0.05;
  };

  CompressedScheme(std::unique_ptr<Scheme> inner, CompressionSpec spec,
                   std::uint64_t seed);

  std::string name() const override;
  void bind(std::size_t num_clients, std::size_t nominal_iterations) override;
  RoundPlan plan_round(std::size_t round_index) override;
  ClientPolicy& client_policy(std::size_t client_id) override;
  nn::SgdOptions local_optimizer(const nn::SgdOptions& base) override;
  void observe_round(const RoundRecord& record) override;
  std::unique_ptr<UpdateCompressor> make_compressor(std::size_t client_id,
                                                    std::size_t round_index) override;

 private:
  std::unique_ptr<Scheme> inner_;
  CompressionSpec spec_;
  std::uint64_t seed_;
};

}  // namespace fedca::fl
