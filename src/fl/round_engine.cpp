#include "fl/round_engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <unordered_set>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"
#include "util/logging.hpp"

namespace fedca::fl {

namespace {

std::string fmt_num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return std::string(buf);
}

}  // namespace

RoundEngine::RoundEngine(nn::Classifier* model, sim::Cluster* cluster,
                         std::vector<data::Dataset> shards, Scheme* scheme,
                         RoundEngineOptions options, util::Rng rng)
    : model_(model),
      cluster_(cluster),
      shards_(std::move(shards)),
      scheme_(scheme),
      options_(options) {
  if (model_ == nullptr || cluster_ == nullptr || scheme_ == nullptr) {
    throw std::invalid_argument("RoundEngine: null dependency");
  }
  if (shards_.size() != cluster_->size()) {
    throw std::invalid_argument("RoundEngine: shard count " +
                                std::to_string(shards_.size()) + " != cluster size " +
                                std::to_string(cluster_->size()));
  }
  if (options_.local_iterations == 0) {
    throw std::invalid_argument("RoundEngine: local_iterations must be > 0");
  }
  if (options_.participation_fraction <= 0.0 || options_.participation_fraction > 1.0) {
    throw std::invalid_argument("RoundEngine: participation_fraction must be in (0, 1]");
  }
  loaders_.reserve(shards_.size());
  for (std::size_t c = 0; c < shards_.size(); ++c) {
    loaders_.emplace_back(&shards_[c], options_.batch_size, rng.fork(0xB00C + c));
  }
  selection_rng_ = rng.fork(0x5E1EC7);
  global_ = model_->state();
  scheme_->bind(cluster_->size(), options_.local_iterations);
}

void RoundEngine::load_global_into_model() { model_->load(global_); }

void RoundEngine::register_trace_processes() {
  obs::TraceCollector& tracer = obs::TraceCollector::global();
  if (trace_registered_ || !tracer.enabled()) return;
  const auto n = static_cast<std::uint32_t>(cluster_->size());
  trace_pid_base_ = tracer.allocate_process_ids(n + 1);
  tracer.set_process_name(server_pid(), scheme_->name() + "/server");
  for (std::uint32_t c = 0; c < n; ++c) {
    tracer.set_process_name(trace_pid_base_ + 1 + c,
                            scheme_->name() + "/client " + std::to_string(c));
  }
  trace_registered_ = true;
}

RoundRecord RoundEngine::run_round() {
  register_trace_processes();
  RoundRecord record;
  record.round_index = round_index_;
  record.start_time = clock_;

  const RoundPlan plan = scheme_->plan_round(round_index_);
  if (plan.iterations.size() != cluster_->size()) {
    throw std::logic_error("RoundEngine: plan has wrong per-client iteration count");
  }
  record.deadline = plan.deadline;

  // Participant selection (all clients when participation_fraction == 1).
  std::vector<std::size_t> participants;
  if (options_.participation_fraction >= 1.0) {
    participants.resize(cluster_->size());
    for (std::size_t c = 0; c < cluster_->size(); ++c) participants[c] = c;
  } else {
    const auto quota = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(options_.participation_fraction *
                                              static_cast<double>(cluster_->size()))));
    participants = selection_rng_.sample_without_replacement(cluster_->size(), quota);
  }

  record.clients.reserve(participants.size());
  for (const std::size_t c : participants) {
    RoundInfo info;
    info.round_index = round_index_;
    info.start_time = clock_;
    info.deadline = (plan.deadline == kNoDeadline) ? kNoDeadline : clock_ + plan.deadline;
    info.planned_iterations = std::max<std::size_t>(1, plan.iterations[c]);
    info.nominal_iterations = options_.local_iterations;
    record.clients.push_back(run_client(c, info));
  }

  double quorum_time = clock_;
  {
    // The server's real aggregation work happens here; the virtual clock
    // charges it nothing (the paper's server is never the bottleneck), so
    // it shows up as a wall-clock span plus a virtual instant.
    FEDCA_WALL_SPAN("server.aggregate");
    record.collected = select_earliest(record.clients, options_.collect_fraction);
    apply_aggregated_update(global_, record.clients, record.collected);
    for (const std::size_t idx : record.collected) {
      quorum_time = std::max(quorum_time, record.clients[idx].arrival_time);
    }
  }
  const double end_time = quorum_time;
  record.end_time = end_time;
  clock_ = end_time;
  ++round_index_;

  obs::TraceCollector& tracer = obs::TraceCollector::global();
  if (tracer.enabled()) {
    tracer.record_span(server_pid(), "round", record.start_time, record.end_time,
                       {{"round", std::to_string(record.round_index)},
                        {"deadline", fmt_num(record.deadline)},
                        {"collected", std::to_string(record.collected.size())},
                        {"participants", std::to_string(record.clients.size())}});
    tracer.record_span(server_pid(), "aggregate", record.end_time, record.end_time,
                       {{"round", std::to_string(record.round_index)},
                        {"updates", std::to_string(record.collected.size())}});
  }
  FEDCA_MCOUNT("engine.rounds", 1.0);
  FEDCA_MHISTO("engine.round_seconds", 0.0, 600.0, 60, record.duration());

  scheme_->observe_round(record);
  FEDCA_LOG_DEBUG("round_engine") << "round " << record.round_index << " done in "
                                  << record.duration() << "s (deadline "
                                  << record.deadline << ")";
  return record;
}

ClientRoundResult RoundEngine::run_client(std::size_t client_id, const RoundInfo& info) {
  sim::ClientDevice& device = cluster_->client(client_id);
  ClientPolicy& policy = scheme_->client_policy(client_id);
  const double bytes_per_param = model_->info().bytes_per_actual_param();
  const double iteration_work = model_->info().nominal_iteration_seconds;

  ClientRoundResult result;
  result.client_id = client_id;
  result.weight = static_cast<double>(shards_[client_id].size());
  result.planned_iterations = info.planned_iterations;

  // Optional lossy codec on everything this client uploads this round.
  const std::unique_ptr<UpdateCompressor> compressor =
      scheme_->make_compressor(client_id, info.round_index);

  obs::TraceCollector& tracer = obs::TraceCollector::global();
  const bool tracing = tracer.enabled();
  const std::uint32_t pid = client_pid(client_id);

  // 1. Download the global model.
  const double model_bytes =
      static_cast<double>(global_.numel()) * bytes_per_param + options_.upload_header_bytes;
  const sim::Transfer download = device.downlink().transmit(info.start_time, model_bytes);
  result.download_done = download.end;
  if (tracing) {
    tracer.record_span(pid, "download", info.start_time, download.end,
                       {{"bytes", fmt_num(model_bytes)},
                        {"round", std::to_string(info.round_index)}});
  }

  // 2. Local training.
  model_->load(global_);
  model_->set_training(true);
  nn::SgdOptions opt_options = scheme_->local_optimizer(options_.optimizer);
  nn::SgdOptimizer optimizer(model_->parameters(), opt_options);
  if (opt_options.prox_mu != 0.0) optimizer.capture_prox_anchor();
  const double base_lr = opt_options.learning_rate;

  policy.on_round_start(info, global_);

  const double train_start = download.end;
  double t = train_start;
  double loss_sum = 0.0;
  std::unordered_set<std::size_t> eager_sent;
  std::size_t iterations = 0;
  bool stopped_early = false;

  const std::vector<nn::Parameter*> params = model_->parameters();

  for (std::size_t tau = 1; tau <= info.planned_iterations; ++tau) {
    const double iter_start = t;
    {
      FEDCA_KERNEL_SPAN("sgd.step");
      const data::Batch batch = loaders_[client_id].next();
      loss_sum += model_->compute_gradients(batch.inputs, batch.labels);
      optimizer.step();
    }
    t = device.compute_finish(t, iteration_work);
    iterations = tau;
    if (tracing) {
      tracer.record_span(pid, "iter", iter_start, t,
                         {{"tau", std::to_string(tau)},
                          {"round", std::to_string(info.round_index)}});
    }

    IterationView view;
    view.iteration = tau;
    view.now = t;
    view.train_start = train_start;
    view.round = &info;
    view.round_start = &global_;
    view.model = &model_->backbone();
    const IterationDecision decision = policy.after_iteration(view);

    for (const std::size_t layer : decision.eager_layers) {
      if (layer >= params.size()) {
        throw std::logic_error("policy requested eager transmission of bad layer index");
      }
      if (!eager_sent.insert(layer).second) continue;  // at most once per round
      EagerRecord eager;
      eager.layer = layer;
      eager.iteration = tau;
      eager.value = tensor::sub(params[layer]->value, global_.tensors[layer]);
      const double layer_bytes =
          compressor ? compressor->compress(eager.value, bytes_per_param)
                     : static_cast<double>(eager.value.numel()) * bytes_per_param;
      const sim::Transfer transfer = device.uplink().transmit(t, layer_bytes);
      eager.send_time = transfer.start;
      eager.arrival_time = transfer.end;
      result.bytes_sent += layer_bytes;
      FEDCA_MCOUNT("engine.eager_transmissions", 1.0);
      result.eager.push_back(std::move(eager));
    }

    if (decision.lr_scale != 1.0) {
      if (decision.lr_scale <= 0.0) {
        throw std::logic_error("policy requested non-positive lr_scale");
      }
      optimizer.set_learning_rate(base_lr * decision.lr_scale);
    }

    if (decision.stop && tau < info.planned_iterations) {
      stopped_early = true;
      if (tracing) {
        obs::TraceArgs args{{"tau", std::to_string(tau)},
                            {"round", std::to_string(info.round_index)}};
        for (const auto& [key, value] : decision.trace_annotations) {
          args.emplace_back(key, fmt_num(value));
        }
        tracer.record_instant(pid, "early_stop", t, std::move(args));
      }
      FEDCA_MCOUNT("engine.early_stops", 1.0);
      break;
    }
  }
  result.iterations_run = iterations;
  result.early_stopped = stopped_early;
  result.compute_done = t;
  result.compute_seconds = t - train_start;
  if (tracing) {
    tracer.record_span(pid, "compute", train_start, t,
                       {{"iterations", std::to_string(iterations)},
                        {"planned", std::to_string(info.planned_iterations)},
                        {"early_stopped", stopped_early ? "1" : "0"},
                        {"round", std::to_string(info.round_index)}});
  }
  result.mean_local_loss = iterations > 0 ? loss_sum / static_cast<double>(iterations) : 0.0;

  // 3. Final update, retransmission selection, and upload.
  nn::ModelState final_update = nn::state_sub(model_->state(), global_);
  const std::vector<std::size_t> retrans =
      policy.select_retransmissions(final_update, result.eager);
  std::unordered_set<std::size_t> retrans_set(retrans.begin(), retrans.end());
  for (EagerRecord& eager : result.eager) {
    if (retrans_set.count(eager.layer) > 0) {
      eager.retransmitted = true;
      ++result.retransmitted_layers;
    }
  }

  double final_bytes = options_.upload_header_bytes;
  for (std::size_t layer = 0; layer < final_update.tensors.size(); ++layer) {
    const bool eagerly_sent = eager_sent.count(layer) > 0;
    const bool retransmit = retrans_set.count(layer) > 0;
    if (!eagerly_sent || retransmit) {
      if (compressor) {
        // The codec rewrites the layer to its decoded values: that is what
        // the server will apply.
        final_bytes += compressor->compress(final_update.tensors[layer], bytes_per_param);
      } else {
        final_bytes +=
            static_cast<double>(final_update.tensors[layer].numel()) * bytes_per_param;
      }
    }
  }
  const sim::Transfer upload = device.uplink().transmit(t, final_bytes);
  result.bytes_sent += final_bytes;
  result.arrival_time = upload.end;
  if (tracing) {
    // Eager uploads are recorded here (not at trigger time) so the span
    // carries the Eq. 6 retransmission verdict.
    for (const EagerRecord& eager : result.eager) {
      tracer.record_span(pid, "upload.eager", eager.send_time, eager.arrival_time,
                         {{"layer", std::to_string(eager.layer)},
                          {"iteration", std::to_string(eager.iteration)},
                          {"retransmitted", eager.retransmitted ? "1" : "0"},
                          {"round", std::to_string(info.round_index)}});
    }
    tracer.record_span(pid, "upload.final", upload.start, upload.end,
                       {{"bytes", fmt_num(final_bytes)},
                        {"retransmitted_layers",
                         std::to_string(result.retransmitted_layers)},
                        {"round", std::to_string(info.round_index)}});
  }
  FEDCA_MCOUNT("engine.client_rounds", 1.0);
  FEDCA_MCOUNT("engine.bytes_sent", result.bytes_sent);
  FEDCA_MCOUNT("engine.retransmissions",
               static_cast<double>(result.retransmitted_layers));
  FEDCA_MHISTO("engine.client_arrival_seconds", 0.0, 600.0, 60,
               result.arrival_time - info.start_time);
  FEDCA_MHISTO("engine.client_iterations", 0.0,
               static_cast<double>(std::max<std::size_t>(1, info.nominal_iterations)),
               32, static_cast<double>(result.iterations_run));

  // 4. The update the server applies: eager values stand unless the layer
  // was retransmitted (in which case the exact final value arrives).
  result.applied_update = std::move(final_update);
  for (const EagerRecord& eager : result.eager) {
    if (!eager.retransmitted) {
      result.applied_update.tensors[eager.layer] = eager.value;
    }
  }

  policy.on_round_end(info);
  return result;
}

}  // namespace fedca::fl
