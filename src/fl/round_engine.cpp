#include "fl/round_engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <optional>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/round_report.hpp"
#include "obs/trace.hpp"
#include "sim/faults.hpp"
#include "tensor/ops.hpp"
#include "tensor/pool.hpp"
#include "util/logging.hpp"

namespace fedca::fl {

namespace {

std::string fmt_num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return std::string(buf);
}

}  // namespace

RoundEngine::RoundEngine(nn::Classifier* model, sim::Cluster* cluster,
                         std::vector<data::Dataset> shards, Scheme* scheme,
                         RoundEngineOptions options, util::Rng rng)
    : model_(model),
      cluster_(cluster),
      shards_(std::move(shards)),
      scheme_(scheme),
      options_(options) {
  if (model_ == nullptr || cluster_ == nullptr || scheme_ == nullptr) {
    throw std::invalid_argument("RoundEngine: null dependency");
  }
  if (cluster_->compact()) {
    // Compact clusters may share a shard pool smaller than the population
    // (client c reads shards_[c % pool]); an oversized pool is still a
    // caller bug.
    if (shards_.empty() || shards_.size() > cluster_->size()) {
      throw std::invalid_argument("RoundEngine: shard pool size " +
                                  std::to_string(shards_.size()) +
                                  " invalid for cluster size " +
                                  std::to_string(cluster_->size()));
    }
  } else if (shards_.size() != cluster_->size()) {
    throw std::invalid_argument("RoundEngine: shard count " +
                                std::to_string(shards_.size()) + " != cluster size " +
                                std::to_string(cluster_->size()));
  }
  if (options_.local_iterations == 0) {
    throw std::invalid_argument("RoundEngine: local_iterations must be > 0");
  }
  if (options_.participation_fraction <= 0.0 || options_.participation_fraction > 1.0) {
    throw std::invalid_argument("RoundEngine: participation_fraction must be in (0, 1]");
  }
  if (cluster_->compact()) {
    // Lazy loaders: fork() is pure, so snapshotting the parent here yields
    // the exact per-client streams the eager loop below would produce.
    loader_rng_ = rng;
    loader_cursors_.resize(cluster_->size());
  } else {
    loaders_.reserve(shards_.size());
    for (std::size_t c = 0; c < shards_.size(); ++c) {
      loaders_.emplace_back(&shards_[c], options_.batch_size, rng.fork(0xB00C + c));
    }
  }
  selection_rng_ = rng.fork(0x5E1EC7);
  global_ = model_->state();
  // Size the tensor pool's global tier to this workload: one model footprint
  // of layer buffers per worker plus one spare (no-op while the pool is at a
  // larger hint already; never shrinks below the historical 64 slots).
  tensor::BufferPool::set_capacity_hint(
      static_cast<std::size_t>(global_.numel()) * sizeof(float),
      util::ThreadPool::resolve_workers(options_.worker_threads));
  scheme_->bind(cluster_->size(), options_.local_iterations);
  // Injected crashes flush the flight recorder's last events per thread:
  // the engine is the component that interprets fault schedules, so it
  // owns wiring the obs dump hook into the sim-layer notification seam.
  sim::set_fault_dump_hook(&obs::flush_on_fault);
}

void RoundEngine::load_global_into_model() { model_->load(global_); }

std::size_t RoundEngine::live_loader_bytes() const {
  std::size_t bytes = 0;
  for (const data::BatchLoader& loader : loaders_) bytes += loader.approx_bytes();
  bytes += loader_cursors_.capacity() * sizeof(data::BatchLoader::Cursor);
  return bytes;
}

std::unique_ptr<nn::Classifier> RoundEngine::acquire_replica() {
  {
    util::MutexLock lock(replica_mutex_);
    if (!replicas_.empty()) {
      std::unique_ptr<nn::Classifier> replica = std::move(replicas_.back());
      replicas_.pop_back();
      return replica;
    }
  }
  // Clone outside the lock: deep copies are the expensive part.
  return model_->clone();
}

void RoundEngine::release_replica(std::unique_ptr<nn::Classifier> replica) {
  util::MutexLock lock(replica_mutex_);
  replicas_.push_back(std::move(replica));
}

util::ThreadPool& RoundEngine::dispatch_pool(std::size_t workers) {
  util::ThreadPool& shared = util::ThreadPool::shared();
  if (workers <= shared.worker_count()) return shared;
  if (!own_pool_ || own_pool_->worker_count() < workers) {
    own_pool_ = std::make_unique<util::ThreadPool>(workers);
  }
  return *own_pool_;
}

void RoundEngine::register_trace_processes() {
  obs::TraceCollector& tracer = obs::TraceCollector::global();
  if (trace_registered_ || !tracer.enabled()) return;
  const auto n = static_cast<std::uint32_t>(cluster_->size());
  trace_pid_base_ = tracer.allocate_process_ids(n + 1);
  tracer.set_process_name(server_pid(), scheme_->name() + "/server");
  for (std::uint32_t c = 0; c < n; ++c) {
    tracer.set_process_name(trace_pid_base_ + 1 + c,
                            scheme_->name() + "/client " + std::to_string(c));
  }
  trace_registered_ = true;
}

RoundRecord RoundEngine::run_round() {
  register_trace_processes();
  RoundRecord record;
  record.round_index = round_index_;
  record.start_time = clock_;

  const RoundPlan plan = scheme_->plan_round(round_index_);
  if (plan.iterations.size() != cluster_->size()) {
    throw std::logic_error("RoundEngine: plan has wrong per-client iteration count");
  }
  record.deadline = plan.deadline;

  // Participant selection (all clients when participation_fraction == 1).
  std::vector<std::size_t> participants;
  if (options_.participation_fraction >= 1.0) {
    participants.resize(cluster_->size());
    for (std::size_t c = 0; c < cluster_->size(); ++c) participants[c] = c;
  } else {
    const auto quota = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(options_.participation_fraction *
                                              static_cast<double>(cluster_->size()))));
    participants = selection_rng_.sample_without_replacement(cluster_->size(), quota);
  }

  // Permanently crashed clients leave the population: they are not asked
  // to participate, so schemes never see them and the deadline estimator's
  // duration samples stay finite.
  const sim::FaultInjector* faults = cluster_->faults().get();
  if (faults != nullptr) {
    if (crash_reported_.size() < cluster_->size()) {
      crash_reported_.resize(cluster_->size(), 0);
    }
    std::vector<std::size_t> alive;
    alive.reserve(participants.size());
    for (const std::size_t c : participants) {
      if (!faults->crashed_at(c, clock_)) {
        alive.push_back(c);
        continue;
      }
      if (!crash_reported_[c]) {
        crash_reported_[c] = 1;
        FEDCA_MCOUNT("faults.crashes", 1.0);
        obs::TraceCollector& tracer = obs::TraceCollector::global();
        if (tracer.enabled()) {
          tracer.record_instant(client_pid(c), "fault.crash", clock_,
                                {{"client", std::to_string(c)},
                                 {"round", std::to_string(round_index_)}});
        }
        sim::notify_fault_dump();
      }
    }
    participants = std::move(alive);
  }

  // Availability dynamics: clients that are offline at round start (renewal
  // churn, diurnal modulation, correlated outages) are skipped for the
  // round, exactly as a production selector would fail to reach them. The
  // layer off (the default) leaves the participant list untouched.
  if (cluster_->availability_enabled()) {
    record.population = cluster_->size();
    std::vector<std::size_t> online;
    online.reserve(participants.size());
    for (const std::size_t c : participants) {
      if (cluster_->online_at(c, clock_)) online.push_back(c);
    }
    record.offline = participants.size() - online.size();
    if (record.offline > 0) {
      FEDCA_MCOUNT("population.offline_skips", static_cast<double>(record.offline));
    }
    participants = std::move(online);
  }

  // Per-participant round facts, built serially in participant order.
  std::vector<RoundInfo> infos(participants.size());
  for (std::size_t i = 0; i < participants.size(); ++i) {
    RoundInfo info;
    info.round_index = round_index_;
    info.start_time = clock_;
    info.deadline = (plan.deadline == kNoDeadline) ? kNoDeadline : clock_ + plan.deadline;
    info.planned_iterations = std::max<std::size_t>(1, plan.iterations[participants[i]]);
    info.nominal_iterations = options_.local_iterations;
    infos[i] = info;
  }

  if (!clone_checked_) {
    clone_checked_ = true;
    std::unique_ptr<nn::Classifier> first = model_->clone();
    cloneable_ = first != nullptr;
    if (cloneable_) release_replica(std::move(first));
  }

  record.clients.resize(participants.size());

  // Round-relative upload cut-off, fixed before training starts (it only
  // depends on the round start time).
  const double timeout_cut = options_.upload_timeout == kNoDeadline
                                 ? kNoDeadline
                                 : record.start_time + options_.upload_timeout;
  // Streaming aggregation: free non-quorum payloads the moment each slot
  // lands instead of buffering the whole cohort until selection.
  const bool streaming =
      options_.streaming == StreamingMode::kOn ||
      (options_.streaming == StreamingMode::kAuto && cluster_->compact());
  std::unique_ptr<StreamingQuorum> quorum;
  if (streaming && !record.clients.empty()) {
    quorum = std::make_unique<StreamingQuorum>(
        &record.clients,
        collect_quota(record.clients.size(), options_.collect_fraction),
        timeout_cut);
  }

  if (!cloneable_) {
    // Legacy serial path: the model cannot be cloned, so every client
    // trains in place on the shared instance, in participant order.
    bool trained = false;
    for (std::size_t i = 0; i < participants.size(); ++i) {
      record.clients[i] = run_client(participants[i], infos[i], *model_, &trained);
      if (quorum) quorum->offer(i);
    }
  } else {
    // Replica path (used for EVERY worker count so batch-norm buffer
    // semantics never depend on the schedule): each client trains a private
    // replica seeded with the global weights and the round-start buffer
    // snapshot; results land in pre-sized slots, so output is bit-identical
    // for 1 or N workers.
    const std::vector<double> round_buffers = nn::capture_buffers(model_->backbone());
    std::vector<std::vector<double>> slot_buffers(participants.size());
    std::vector<char> slot_trained(participants.size(), 0);
    const auto train_one = [&](std::size_t i) {
      std::unique_ptr<nn::Classifier> replica = acquire_replica();
      if (!round_buffers.empty()) {
        nn::load_buffers(replica->backbone(), round_buffers);
      }
      bool trained = false;
      record.clients[i] = run_client(participants[i], infos[i], *replica, &trained);
      if (trained && !round_buffers.empty()) {
        slot_buffers[i] = nn::capture_buffers(replica->backbone());
      }
      slot_trained[i] = trained ? 1 : 0;
      release_replica(std::move(replica));
      if (quorum) quorum->offer(i);
    };
    const std::size_t workers = util::ThreadPool::resolve_workers(options_.worker_threads);
    if (workers <= 1 || participants.size() <= 1) {
      for (std::size_t i = 0; i < participants.size(); ++i) train_one(i);
    } else {
      dispatch_pool(workers).parallel_for_dynamic(participants.size(), train_one, workers);
    }
    // The shared model keeps the buffers of the last participant that
    // trained — the same participant the serial schedule would leave them
    // from — regardless of how the slots were scheduled.
    if (!round_buffers.empty()) {
      for (std::size_t i = participants.size(); i-- > 0;) {
        if (slot_trained[i]) {
          nn::load_buffers(model_->backbone(), slot_buffers[i]);
          break;
        }
      }
    }
  }

  // Per-client success metrics, emitted in participant order on this
  // thread: double-valued counter adds and histogram updates are
  // order-sensitive in the last ulps, so they must not race.
  for (const ClientRoundResult& r : record.clients) {
    if (r.failed || !std::isfinite(r.arrival_time)) continue;
    FEDCA_MCOUNT("engine.client_rounds", 1.0);
    FEDCA_MCOUNT("engine.bytes_sent", r.bytes_sent);
    FEDCA_MCOUNT("engine.retransmissions",
                 static_cast<double>(r.retransmitted_layers));
    FEDCA_MHISTO("engine.client_arrival_seconds", 0.0, 600.0, 60,
                 r.arrival_time - record.start_time);
    FEDCA_MHISTO("engine.client_iterations", 0.0,
                 static_cast<double>(std::max<std::size_t>(1, options_.local_iterations)),
                 32, static_cast<double>(r.iterations_run));
  }

  // Survivor filtering: failed clients and non-finite arrivals never make
  // the candidate list; a finite upload_timeout additionally drops late
  // arrivals. In the fault-free default (no injector, no timeout) every
  // participant is a candidate and the selection below reduces exactly to
  // the original collect_fraction rule.
  obs::TraceCollector& tracer = obs::TraceCollector::global();
  std::vector<std::size_t> candidates;
  candidates.reserve(record.clients.size());
  for (std::size_t i = 0; i < record.clients.size(); ++i) {
    const ClientRoundResult& r = record.clients[i];
    if (r.failed || !std::isfinite(r.arrival_time)) continue;
    if (r.arrival_time > timeout_cut) {
      FEDCA_MCOUNT("engine.upload_timeouts", 1.0);
      if (tracer.enabled()) {
        tracer.record_instant(client_pid(r.client_id), "recovery.timeout_exclude",
                              timeout_cut,
                              {{"client", std::to_string(r.client_id)},
                               {"round", std::to_string(record.round_index)},
                               {"arrival", fmt_num(r.arrival_time)}});
      }
      continue;
    }
    candidates.push_back(i);
  }

  double quorum_time = clock_;
  {
    // The server's real aggregation work happens here; the virtual clock
    // charges it nothing (the paper's server is never the bottleneck), so
    // it shows up as a wall-clock span plus a virtual instant.
    FEDCA_WALL_SPAN("server.aggregate");
    record.collected = select_earliest(record.clients, candidates,
                                       record.clients.size(),
                                       options_.collect_fraction);
    if (!record.collected.empty()) {
      record.collected_weights =
          apply_aggregated_update(global_, record.clients, record.collected);
      for (const std::size_t idx : record.collected) {
        quorum_time = std::max(quorum_time, record.clients[idx].arrival_time);
      }
    }
  }
  double end_time = quorum_time;
  if (record.collected.empty()) {
    // Every participant failed (or timed out): the global model stands and
    // the round ends at a finite fallback time so the clock stays sane.
    double fallback = record.start_time;
    for (const ClientRoundResult& r : record.clients) {
      for (const double t :
           {r.arrival_time, r.compute_done, r.download_done, r.fail_time}) {
        if (std::isfinite(t)) fallback = std::max(fallback, t);
      }
    }
    end_time = timeout_cut != kNoDeadline ? std::min(timeout_cut, fallback)
                                          : fallback;
    end_time = std::max(end_time, record.start_time);
    FEDCA_MCOUNT("engine.rounds_empty", 1.0);
    if (tracer.enabled()) {
      tracer.record_instant(server_pid(), "recovery.empty_round", end_time,
                            {{"round", std::to_string(record.round_index)},
                             {"participants",
                              std::to_string(record.clients.size())}});
    }
  } else if (faults != nullptr || timeout_cut != kNoDeadline) {
    const auto planned_quota = static_cast<std::size_t>(
        std::ceil(std::clamp(options_.collect_fraction, 1e-9, 1.0) *
                  static_cast<double>(record.clients.size())));
    if (record.collected.size() < std::max<std::size_t>(1, planned_quota)) {
      FEDCA_MCOUNT("engine.partial_rounds", 1.0);
      if (tracer.enabled()) {
        tracer.record_instant(server_pid(), "recovery.partial_aggregation",
                              end_time,
                              {{"round", std::to_string(record.round_index)},
                               {"collected",
                                std::to_string(record.collected.size())},
                               {"planned", std::to_string(planned_quota)}});
      }
    }
  }
  record.end_time = end_time;
  clock_ = end_time;
  ++round_index_;

  if (tracer.enabled()) {
    tracer.record_span(server_pid(), "round", record.start_time, record.end_time,
                       {{"round", std::to_string(record.round_index)},
                        {"deadline", fmt_num(record.deadline)},
                        {"collected", std::to_string(record.collected.size())},
                        {"participants", std::to_string(record.clients.size())}});
    tracer.record_span(server_pid(), "aggregate", record.end_time, record.end_time,
                       {{"round", std::to_string(record.round_index)},
                        {"updates", std::to_string(record.collected.size())}});
  }
  FEDCA_MCOUNT("engine.rounds", 1.0);
  FEDCA_MHISTO("engine.round_seconds", 0.0, 600.0, 60, record.duration());
  if (obs::metrics_enabled() && tensor::BufferPool::enabled()) {
    tensor::BufferPool::global().publish_metrics();
  }

  // Round attribution: one JSONL line per round with the deadline
  // estimate vs realized times, a per-client outcome, and the straggler
  // classification. Everything here is virtual-clock data copied from the
  // record on the main thread, so the report is bit-identical across
  // worker counts and recorder on/off.
  obs::RoundReportWriter& reporter = obs::RoundReportWriter::global();
  if (reporter.enabled()) {
    obs::RoundReport report;
    report.round_index = record.round_index;
    report.start_time = record.start_time;
    report.end_time = record.end_time;
    report.deadline = record.deadline;  // kNoDeadline serializes as null
    report.population = record.population;
    report.offline = record.offline;
    std::vector<char> collected_flag(record.clients.size(), 0);
    std::vector<double> weight_of(record.clients.size(), 0.0);
    for (std::size_t j = 0; j < record.collected.size(); ++j) {
      const std::size_t idx = record.collected[j];
      collected_flag[idx] = 1;
      if (j < record.collected_weights.size()) {
        weight_of[idx] = record.collected_weights[j];
      }
    }
    report.clients.reserve(record.clients.size());
    for (std::size_t i = 0; i < record.clients.size(); ++i) {
      const ClientRoundResult& r = record.clients[i];
      obs::ClientRoundReport c;
      c.client_id = r.client_id;
      if (r.failed) {
        c.outcome = r.fault == ClientFault::kCrash        ? "crashed"
                    : r.fault == ClientFault::kLinkOutage ? "link_outage"
                                                          : "dropout";
      } else if (std::isfinite(r.arrival_time) && r.arrival_time > timeout_cut) {
        c.outcome = "timed_out";
      } else if (collected_flag[i]) {
        c.outcome = "collected";
        c.weight = weight_of[i];
      } else {
        c.outcome = "shed";
      }
      c.iterations = r.iterations_run;
      c.planned_iterations = r.planned_iterations;
      c.early_stopped = r.early_stopped;
      c.tau = r.early_stopped ? r.compute_done : obs::kNoTime;
      c.duration = std::isfinite(r.arrival_time)
                       ? r.arrival_time - record.start_time
                       : obs::kNoTime;
      c.compute_seconds = r.compute_seconds;
      c.bytes_sent = r.bytes_sent;
      c.eager_bytes = r.eager_bytes;
      c.eager_layers = r.eager.size();
      c.retransmitted_layers = r.retransmitted_layers;
      report.clients.push_back(std::move(c));
    }
    obs::finalize_round_report(report);
    reporter.append(report);
  }

  scheme_->observe_round(record);
  FEDCA_LOG_DEBUG("round_engine") << "round " << record.round_index << " done in "
                                  << record.duration() << "s (deadline "
                                  << record.deadline << ")";
  return record;
}

ClientRoundResult RoundEngine::run_client(std::size_t client_id, const RoundInfo& info,
                                          nn::Classifier& model, bool* trained) {
  // In compact mode the lease materializes a pooled replica from the
  // registry record and commits link state back when it drops (including
  // on every early return below); legacy mode borrows the live device.
  sim::DeviceLease device_lease = cluster_->lease(client_id);
  sim::ClientDevice& device = *device_lease;
  ClientPolicy& policy = scheme_->client_policy(client_id);
  const double bytes_per_param = model.info().bytes_per_actual_param();
  const double iteration_work = model.info().nominal_iteration_seconds;
  const std::size_t shard = client_id % shards_.size();

  ClientRoundResult result;
  result.client_id = client_id;
  result.weight = static_cast<double>(shards_[shard].size());
  result.planned_iterations = info.planned_iterations;

  // Optional lossy codec on everything this client uploads this round.
  const std::unique_ptr<UpdateCompressor> compressor =
      scheme_->make_compressor(client_id, info.round_index);

  obs::TraceCollector& tracer = obs::TraceCollector::global();
  const bool tracing = tracer.enabled();
  const std::uint32_t pid = client_pid(client_id);

  // Fault horizon for this round: the first virtual time >= round start at
  // which the client goes offline (crash or dropout window). Everything the
  // client does past that point is lost.
  const sim::FaultInjector* faults = cluster_->faults().get();
  double fail_time = kNoDeadline;
  ClientFault fail_kind = ClientFault::kNone;
  if (faults != nullptr) {
    const double off = faults->next_offline(client_id, info.start_time);
    if (std::isfinite(off)) {
      fail_time = off;
      fail_kind = faults->offline_kind(client_id, off) == sim::FaultKind::kCrash
                      ? ClientFault::kCrash
                      : ClientFault::kDropout;
    }
  }
  const auto fail = [&](double at, ClientFault kind) {
    result.failed = true;
    result.fault = kind;
    result.fail_time = at;
    result.arrival_time = kNoDeadline;
    const char* name = kind == ClientFault::kCrash       ? "fault.crash"
                       : kind == ClientFault::kLinkOutage ? "fault.link_outage"
                                                          : "fault.dropout";
    if (kind == ClientFault::kCrash) {
      // A crash is a one-time event per client: the mid-round failure here
      // and the next round's participant exclusion must not both count it.
      if (client_id < crash_reported_.size() && crash_reported_[client_id]) {
        return;
      }
      if (client_id < crash_reported_.size()) crash_reported_[client_id] = 1;
      FEDCA_MCOUNT("faults.crashes", 1.0);
    } else if (kind == ClientFault::kLinkOutage) {
      FEDCA_MCOUNT("faults.link_outages", 1.0);
    } else {
      FEDCA_MCOUNT("faults.dropouts", 1.0);
    }
    if (tracing && std::isfinite(at)) {
      tracer.record_instant(pid, name, at,
                            {{"client", std::to_string(client_id)},
                             {"round", std::to_string(info.round_index)}});
    }
    if (kind == ClientFault::kCrash) {
      // Crash dump: persist the recorder rings — the last events every
      // thread saw, including the fault.crash instant just recorded — at
      // the moment the injected crash fires.
      sim::notify_fault_dump();
    }
  };

  // Offline at round start (mid-dropout window): the client misses the
  // round entirely — no transfers, no policy interaction.
  if (fail_time <= info.start_time) {
    result.download_done = info.start_time;
    result.compute_done = info.start_time;
    fail(info.start_time, fail_kind);
    return result;
  }

  // 1. Download the global model.
  const double model_bytes =
      static_cast<double>(global_.numel()) * bytes_per_param + options_.upload_header_bytes;
  const sim::Transfer download = device.downlink().transmit(info.start_time, model_bytes);
  result.download_done = download.end;
  if (!std::isfinite(download.end)) {
    // The downlink is in a permanent outage: the model never arrives.
    result.compute_done = info.start_time;
    fail(info.start_time, ClientFault::kLinkOutage);
    return result;
  }
  if (download.end > fail_time) {
    // Client went offline while the model was still in flight.
    result.compute_done = fail_time;
    fail(fail_time, fail_kind);
    return result;
  }
  if (tracing) {
    tracer.record_span(pid, "download", info.start_time, download.end,
                       {{"bytes", fmt_num(model_bytes)},
                        {"round", std::to_string(info.round_index)}});
  }

  // 2. Local training. Legacy clusters use the client's persistent loader;
  // compact clusters rebuild it from the pure per-client fork and the
  // stored (epoch, position) cursor — same stream, O(cohort) live loaders.
  data::BatchLoader* loader = nullptr;
  std::optional<data::BatchLoader> local_loader;
  if (loaders_.empty()) {
    local_loader.emplace(&shards_[shard], options_.batch_size,
                         loader_rng_.fork(0xB00C + client_id));
    const data::BatchLoader::Cursor& cur = loader_cursors_[client_id];
    if (cur.epochs > 0 || cur.position > 0) local_loader->restore(cur);
    loader = &*local_loader;
  } else {
    loader = &loaders_[client_id];
  }
  model.load(global_);
  model.set_training(true);
  *trained = true;  // at least one SGD step always runs past this point
  nn::SgdOptions opt_options = scheme_->local_optimizer(options_.optimizer);
  nn::SgdOptimizer optimizer(model.parameters(), opt_options);
  if (opt_options.prox_mu != 0.0) optimizer.capture_prox_anchor();
  const double base_lr = opt_options.learning_rate;

  policy.on_round_start(info, global_);

  const double train_start = download.end;
  double t = train_start;
  double loss_sum = 0.0;
  std::size_t iterations = 0;
  bool stopped_early = false;

  const std::vector<nn::Parameter*>& params = model.parameters();
  // Flat flag array instead of a hash set: one allocation, O(1) queries.
  std::vector<char> eager_sent(params.size(), 0);

  bool interrupted = false;
  for (std::size_t tau = 1; tau <= info.planned_iterations; ++tau) {
    const double iter_start = t;
    {
      FEDCA_KERNEL_SPAN("sgd.step");
      // Reference into the loader's reused batch storage — no per-iteration
      // gather allocation.
      const data::Batch& batch = loader->next_batch();
      loss_sum += model.compute_gradients(batch.inputs, batch.labels);
      optimizer.step();
    }
    t = device.compute_finish(t, iteration_work);
    if (t > fail_time) {
      // The iteration in progress when the client went offline never
      // completes; its work (and everything before it) is lost.
      interrupted = true;
      t = fail_time;
      break;
    }
    iterations = tau;
    if (tracing) {
      tracer.record_span(pid, "iter", iter_start, t,
                         {{"tau", std::to_string(tau)},
                          {"round", std::to_string(info.round_index)}});
    }

    IterationView view;
    view.iteration = tau;
    view.now = t;
    view.train_start = train_start;
    view.round = &info;
    view.round_start = &global_;
    view.model = &model.backbone();
    const IterationDecision decision = policy.after_iteration(view);

    if (!decision.eager_layers.empty()) {
      result.eager.reserve(result.eager.size() + decision.eager_layers.size());
    }
    for (const std::size_t layer : decision.eager_layers) {
      if (layer >= params.size()) {
        throw std::logic_error("policy requested eager transmission of bad layer index");
      }
      if (eager_sent[layer]) continue;  // at most once per round
      eager_sent[layer] = 1;
      EagerRecord eager;
      eager.layer = layer;
      eager.iteration = tau;
      tensor::sub_into(params[layer]->value, global_.tensors[layer], eager.value);
      double layer_bytes;
      if (options_.eager_wire == EagerWire::kInt8) {
        // Quantized eager wire: int8 codes replace the scheme codec on
        // this path only; the final upload (and any retransmission) stays
        // on the scheme codec, so error feedback absorbs the residual.
        Int8Quantizer int8_codec;
        layer_bytes = int8_codec.compress(eager.value, bytes_per_param);
      } else {
        layer_bytes =
            compressor ? compressor->compress(eager.value, bytes_per_param)
                       : static_cast<double>(eager.value.numel()) * bytes_per_param;
      }
      const sim::Transfer transfer = device.uplink().transmit(t, layer_bytes);
      eager.send_time = transfer.start;
      eager.arrival_time = transfer.end;
      result.bytes_sent += layer_bytes;
      result.eager_bytes += layer_bytes;
      FEDCA_MCOUNT("engine.eager_transmissions", 1.0);
      if (faults != nullptr) {
        // Seeded in-flight loss/corruption of the eager payload. Either
        // way the server discards it (corruption is caught by checksum),
        // and the layer is force-retransmitted with the final upload.
        const sim::EagerFault ef =
            faults->eager_fault(client_id, info.round_index, layer);
        if (ef == sim::EagerFault::kLost) {
          eager.lost = true;
          FEDCA_MCOUNT("faults.eager_lost", 1.0);
          if (tracing && std::isfinite(transfer.end)) {
            tracer.record_instant(pid, "fault.eager_lost", transfer.end,
                                  {{"client", std::to_string(client_id)},
                                   {"layer", std::to_string(layer)},
                                   {"round", std::to_string(info.round_index)}});
          }
        } else if (ef == sim::EagerFault::kTruncated) {
          eager.truncated = true;
          FEDCA_MCOUNT("faults.eager_truncated", 1.0);
          if (tracing && std::isfinite(transfer.end)) {
            tracer.record_instant(pid, "fault.eager_truncated", transfer.end,
                                  {{"client", std::to_string(client_id)},
                                   {"layer", std::to_string(layer)},
                                   {"round", std::to_string(info.round_index)}});
          }
        }
      }
      result.eager.push_back(std::move(eager));
    }

    if (decision.lr_scale != 1.0) {
      if (decision.lr_scale <= 0.0) {
        throw std::logic_error("policy requested non-positive lr_scale");
      }
      optimizer.set_learning_rate(base_lr * decision.lr_scale);
    }

    if (decision.stop && tau < info.planned_iterations) {
      stopped_early = true;
      if (tracing) {
        obs::TraceArgs args{{"tau", std::to_string(tau)},
                            {"round", std::to_string(info.round_index)}};
        for (const auto& [key, value] : decision.trace_annotations) {
          args.emplace_back(key, fmt_num(value));
        }
        tracer.record_instant(pid, "early_stop", t, std::move(args));
      }
      FEDCA_MCOUNT("engine.early_stops", 1.0);
      break;
    }
  }
  if (local_loader.has_value()) {
    loader_cursors_[client_id] = local_loader->cursor();
  }
  result.iterations_run = iterations;
  result.early_stopped = stopped_early;
  result.compute_done = t;
  result.compute_seconds = t - train_start;
  if (tracing) {
    tracer.record_span(pid, "compute", train_start, t,
                       {{"iterations", std::to_string(iterations)},
                        {"planned", std::to_string(info.planned_iterations)},
                        {"early_stopped", stopped_early ? "1" : "0"},
                        {"round", std::to_string(info.round_index)}});
  }
  result.mean_local_loss = iterations > 0 ? loss_sum / static_cast<double>(iterations) : 0.0;

  if (interrupted) {
    // Training was cut short by a dropout/crash: nothing is uploaded and
    // the server never hears from this client this round.
    fail(fail_time, fail_kind);
    policy.on_round_end(info);
    return result;
  }

  // 3. Final update, retransmission selection, and upload. Captured and
  // subtracted in place — no intermediate ModelState materialization.
  nn::ModelState final_update;
  nn::capture_state_into(params, final_update);
  nn::state_sub_inplace(final_update, global_);
  const std::vector<std::size_t> retrans =
      policy.select_retransmissions(final_update, result.eager);
  std::vector<char> retrans_flags(params.size(), 0);
  for (const std::size_t layer : retrans) {
    if (layer < retrans_flags.size()) retrans_flags[layer] = 1;
  }
  // Recovery: an eager payload lost or corrupted in flight must ride the
  // final upload no matter what the Eq. 6 error-feedback check decided —
  // the server has nothing usable for that layer.
  for (const EagerRecord& eager : result.eager) {
    if ((eager.lost || eager.truncated) && !retrans_flags[eager.layer]) {
      retrans_flags[eager.layer] = 1;
      FEDCA_MCOUNT("engine.fault_retransmissions", 1.0);
      if (tracing) {
        tracer.record_instant(pid, "recovery.eager_retransmit", t,
                              {{"client", std::to_string(client_id)},
                               {"layer", std::to_string(eager.layer)},
                               {"round", std::to_string(info.round_index)}});
      }
    }
  }
  for (EagerRecord& eager : result.eager) {
    if (retrans_flags[eager.layer]) {
      eager.retransmitted = true;
      ++result.retransmitted_layers;
    }
  }

  double final_bytes = options_.upload_header_bytes;
  for (std::size_t layer = 0; layer < final_update.tensors.size(); ++layer) {
    const bool eagerly_sent = eager_sent[layer] != 0;
    const bool retransmit = retrans_flags[layer] != 0;
    if (!eagerly_sent || retransmit) {
      if (compressor) {
        // The codec rewrites the layer to its decoded values: that is what
        // the server will apply.
        final_bytes += compressor->compress(final_update.tensors[layer], bytes_per_param);
      } else {
        final_bytes +=
            static_cast<double>(final_update.tensors[layer].numel()) * bytes_per_param;
      }
    }
  }
  const sim::Transfer upload = device.uplink().transmit(t, final_bytes);
  result.bytes_sent += final_bytes;
  result.arrival_time = upload.end;
  if (tracing) {
    // Eager uploads are recorded here (not at trigger time) so the span
    // carries the Eq. 6 retransmission verdict.
    for (const EagerRecord& eager : result.eager) {
      if (!std::isfinite(eager.arrival_time)) continue;
      tracer.record_span(pid, "upload.eager", eager.send_time, eager.arrival_time,
                         {{"layer", std::to_string(eager.layer)},
                          {"iteration", std::to_string(eager.iteration)},
                          {"retransmitted", eager.retransmitted ? "1" : "0"},
                          {"round", std::to_string(info.round_index)}});
    }
    if (std::isfinite(upload.end)) {
      tracer.record_span(pid, "upload.final", upload.start, upload.end,
                         {{"bytes", fmt_num(final_bytes)},
                          {"retransmitted_layers",
                           std::to_string(result.retransmitted_layers)},
                          {"round", std::to_string(info.round_index)}});
    }
  }
  if (!std::isfinite(upload.end)) {
    // Permanent uplink outage: the update never reaches the server.
    fail(t, ClientFault::kLinkOutage);
    policy.on_round_end(info);
    return result;
  }
  if (upload.end > fail_time) {
    // The client went offline with the final upload still in flight.
    fail(fail_time, fail_kind);
    policy.on_round_end(info);
    return result;
  }
  // Success metrics (counters + histograms) are emitted by run_round in
  // participant order — double-valued metric updates must not race.

  // 4. The update the server applies: eager values stand unless the layer
  // was retransmitted (in which case the exact final value arrives).
  result.applied_update = std::move(final_update);
  for (const EagerRecord& eager : result.eager) {
    if (!eager.retransmitted) {
      result.applied_update.tensors[eager.layer] = eager.value;
    }
  }

  policy.on_round_end(info);
  return result;
}

}  // namespace fedca::fl
