#include "fl/async_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>

#include "nn/sgd.hpp"
#include "obs/metrics.hpp"
#include "obs/round_report.hpp"
#include "obs/trace.hpp"
#include "sim/faults.hpp"
#include "tensor/pool.hpp"

namespace fedca::fl {

namespace {

// Appends one async_update line to the run report (no-op until
// obs::configure arms the writer). `seq` is the engine's monotone record
// counter, bumped only when a line is actually written.
void report_async_update(std::size_t& seq, std::size_t client, double arrival,
                         std::size_t staleness, double weight, bool lost,
                         const char* outcome) {
  obs::RoundReportWriter& reporter = obs::RoundReportWriter::global();
  if (!reporter.enabled()) return;
  obs::AsyncUpdateReport report;
  report.update_index = seq++;
  report.client_id = client;
  report.arrival_time = arrival;
  report.staleness = staleness;
  report.weight = weight;
  report.lost = lost;
  report.outcome = outcome;
  reporter.append(report);
}

}  // namespace

AsyncEngine::AsyncEngine(nn::Classifier* model, sim::Cluster* cluster,
                         std::vector<data::Dataset> shards, AsyncEngineOptions options,
                         util::Rng rng)
    : model_(model), cluster_(cluster), shards_(std::move(shards)), options_(options) {
  if (model_ == nullptr || cluster_ == nullptr) {
    throw std::invalid_argument("AsyncEngine: null dependency");
  }
  if (cluster_->compact()) {
    if (shards_.empty() || shards_.size() > cluster_->size()) {
      throw std::invalid_argument("AsyncEngine: shard pool size invalid");
    }
  } else if (shards_.size() != cluster_->size()) {
    throw std::invalid_argument("AsyncEngine: shard count mismatch");
  }
  if (options_.local_iterations == 0) {
    throw std::invalid_argument("AsyncEngine: local_iterations must be > 0");
  }
  if (options_.mix <= 0.0 || options_.mix > 1.0) {
    throw std::invalid_argument("AsyncEngine: mix must be in (0, 1]");
  }
  if (cluster_->compact()) {
    // Lazy loaders (fork() is pure): same streams as the eager loop below.
    loader_rng_ = rng;
    loader_cursors_.resize(cluster_->size());
  } else {
    loaders_.reserve(shards_.size());
    for (std::size_t c = 0; c < shards_.size(); ++c) {
      loaders_.emplace_back(&shards_[c], options_.batch_size, rng.fork(0xA517C + c));
    }
  }
  tensor::BufferPool::set_capacity_hint(
      static_cast<std::size_t>(model_->state().numel()) * sizeof(float),
      util::ThreadPool::resolve_workers(options_.worker_threads));
  // Arm the crash-dump seam before any launch can hit an injected fault:
  // a permanent crash flushes the flight recorder / metrics / report so
  // the tail of the run survives.
  sim::set_fault_dump_hook(&obs::flush_on_fault);
  global_ = model_->state();
  in_flight_.resize(cluster_->size());
  for (std::size_t c = 0; c < cluster_->size(); ++c) launch(c, 0.0);
}

void AsyncEngine::load_global_into_model() { model_->load(global_); }

std::unique_ptr<nn::Classifier> AsyncEngine::acquire_replica() {
  {
    util::MutexLock lock(replica_mutex_);
    if (!replicas_.empty()) {
      std::unique_ptr<nn::Classifier> replica = std::move(replicas_.back());
      replicas_.pop_back();
      return replica;
    }
  }
  return model_->clone();
}

void AsyncEngine::release_replica(std::unique_ptr<nn::Classifier> replica) {
  util::MutexLock lock(replica_mutex_);
  replicas_.push_back(std::move(replica));
}

util::ThreadPool& AsyncEngine::dispatch_pool(std::size_t workers) {
  util::ThreadPool& shared = util::ThreadPool::shared();
  if (workers <= shared.worker_count()) return shared;
  if (!own_pool_ || own_pool_->worker_count() < workers) {
    own_pool_ = std::make_unique<util::ThreadPool>(workers);
  }
  return *own_pool_;
}

void AsyncEngine::train_cycle(nn::Classifier& net, std::size_t c) {
  nn::SgdOptimizer optimizer(net.parameters(), options_.optimizer);
  data::BatchLoader* loader = nullptr;
  std::optional<data::BatchLoader> local_loader;
  if (loaders_.empty()) {
    local_loader.emplace(&shards_[c % shards_.size()], options_.batch_size,
                         loader_rng_.fork(0xA517C + c));
    const data::BatchLoader::Cursor& cur = loader_cursors_[c];
    if (cur.epochs > 0 || cur.position > 0) local_loader->restore(cur);
    loader = &*local_loader;
  } else {
    loader = &loaders_[c];
  }
  for (std::size_t it = 0; it < options_.local_iterations; ++it) {
    const data::Batch& batch = loader->next_batch();
    net.compute_gradients(batch.inputs, batch.labels);
    optimizer.step();
  }
  if (local_loader.has_value()) loader_cursors_[c] = local_loader->cursor();
}

void AsyncEngine::train_pending(InFlight& winner_flight, std::size_t winner) {
  if (!clone_checked_) {
    clone_checked_ = true;
    std::unique_ptr<nn::Classifier> first = model_->clone();
    cloneable_ = first != nullptr;
    if (cloneable_) release_replica(std::move(first));
  }

  if (!cloneable_) {
    // Legacy serial path: train only the winner, in place on the shared
    // model (batch-norm buffers chain arrival-to-arrival exactly as
    // before).
    model_->load(*winner_flight.snapshot);
    model_->set_training(true);
    train_cycle(*model_, winner);
    nn::capture_state_into(model_->parameters(), winner_flight.update);
    nn::state_sub_inplace(winner_flight.update, *winner_flight.snapshot);
    winner_flight.trained = true;
    winner_flight.snapshot.reset();
    return;
  }

  // Speculative batch: the winner plus every other live, non-lost,
  // untrained cycle. Each cycle's result depends only on its own snapshot
  // and its client's private loader (one cycle in flight per client, so
  // loader consumption order is the client's cycle order no matter when or
  // on which thread training runs). The batch set itself is a function of
  // virtual time only — worker-count invariant.
  std::vector<std::size_t> others;
  others.reserve(in_flight_.size());
  for (std::size_t c = 0; c < in_flight_.size(); ++c) {
    if (c == winner) continue;
    const InFlight& f = in_flight_[c];
    if (f.dead || f.lost || f.trained || !std::isfinite(f.arrival_time)) continue;
    others.push_back(c);
  }
  // Speculation bound: keep the earliest-arriving cap-1 companions (ties by
  // client id). Dropped cycles simply train in a later batch or at their
  // own arrival — the per-cycle result is unchanged either way.
  if (options_.speculative_cap > 0 &&
      others.size() + 1 > options_.speculative_cap) {
    const std::size_t keep = options_.speculative_cap - 1;
    std::sort(others.begin(), others.end(), [this](std::size_t a, std::size_t b) {
      if (in_flight_[a].arrival_time != in_flight_[b].arrival_time) {
        return in_flight_[a].arrival_time < in_flight_[b].arrival_time;
      }
      return a < b;
    });
    others.resize(keep);
    std::sort(others.begin(), others.end());
  }
  std::vector<InFlight*> jobs;
  std::vector<std::size_t> ids;
  jobs.reserve(others.size() + 1);
  ids.reserve(others.size() + 1);
  jobs.push_back(&winner_flight);
  ids.push_back(winner);
  for (const std::size_t c : others) {
    jobs.push_back(&in_flight_[c]);
    ids.push_back(c);
  }

  const std::vector<double> base_buffers = nn::capture_buffers(model_->backbone());
  const auto train_one = [&](std::size_t i) {
    InFlight& f = *jobs[i];
    std::unique_ptr<nn::Classifier> replica = acquire_replica();
    if (!base_buffers.empty()) nn::load_buffers(replica->backbone(), base_buffers);
    replica->load(*f.snapshot);
    replica->set_training(true);
    train_cycle(*replica, ids[i]);
    nn::capture_state_into(replica->parameters(), f.update);
    nn::state_sub_inplace(f.update, *f.snapshot);
    if (!base_buffers.empty()) f.buffers = nn::capture_buffers(replica->backbone());
    f.trained = true;
    f.snapshot.reset();  // no longer needed; drop this cycle's reference
    release_replica(std::move(replica));
  };

  const std::size_t workers = util::ThreadPool::resolve_workers(options_.worker_threads);
  if (workers <= 1 || jobs.size() <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) train_one(i);
  } else {
    dispatch_pool(workers).parallel_for_dynamic(jobs.size(), train_one, workers);
  }
  FEDCA_MCOUNT("async.speculative_batches", 1.0);
  FEDCA_MCOUNT("async.speculative_cycles", static_cast<double>(jobs.size()));
}

void AsyncEngine::launch(std::size_t c, double t) {
  obs::TraceCollector& tracer = obs::TraceCollector::global();
  const bool tracing = tracer.enabled();
  if (tracing && trace_pid_base_ == 0) {
    const auto n = static_cast<std::uint32_t>(cluster_->size());
    trace_pid_base_ = tracer.allocate_process_ids(n + 1);
    tracer.set_process_name(trace_pid_base_, "async/server");
    for (std::uint32_t i = 0; i < n; ++i) {
      tracer.set_process_name(trace_pid_base_ + 1 + i,
                              "async/client " + std::to_string(i));
    }
  }
  const std::uint32_t pid = trace_pid_base_ + 1 + static_cast<std::uint32_t>(c);

  // Fault gate: a crashed client never launches again; a client inside a
  // dropout window starts its cycle when the window closes.
  const sim::FaultInjector* faults = cluster_->faults().get();
  double start = t;
  if (faults != nullptr) {
    start = faults->online_after(c, t);
    if (!std::isfinite(start)) {
      in_flight_[c].dead = true;
      in_flight_[c].arrival_time = kNoDeadline;
      FEDCA_MCOUNT("faults.crashes", 1.0);
      if (tracing) {
        tracer.record_instant(pid, "fault.crash", t,
                              {{"client", std::to_string(c)}});
      }
      report_async_update(report_sequence_, c, t, 0, 0.0, true, "crash");
      sim::notify_fault_dump();
      return;
    }
  }

  sim::DeviceLease device_lease = cluster_->lease(c);
  sim::ClientDevice& device = *device_lease;
  const double bytes_per_param = model_->info().bytes_per_actual_param();
  const double model_bytes =
      static_cast<double>(global_.numel()) * bytes_per_param +
      options_.upload_header_bytes;

  const sim::Transfer download = device.downlink().transmit(start, model_bytes);
  const double compute_work = static_cast<double>(options_.local_iterations) *
                              model_->info().nominal_iteration_seconds;
  const double compute_done = device.compute_finish(download.end, compute_work);
  const sim::Transfer upload = device.uplink().transmit(compute_done, model_bytes);

  InFlight flight;
  flight.downloaded_version = version_;

  if (!std::isfinite(upload.end)) {
    // Permanent link outage somewhere in the cycle: the client can never
    // deliver again.
    in_flight_[c].dead = true;
    in_flight_[c].arrival_time = kNoDeadline;
    FEDCA_MCOUNT("faults.link_outages", 1.0);
    if (tracing) {
      tracer.record_instant(pid, "fault.link_outage", start,
                            {{"client", std::to_string(c)}});
    }
    report_async_update(report_sequence_, c, start, 0, 0.0, true, "link_outage");
    return;
  }

  // Mid-cycle dropout/crash: the cycle is lost at the moment the client
  // goes offline; step() relaunches it once it is back.
  const double fail_time =
      faults != nullptr ? faults->next_offline(c, start) : kNoDeadline;
  if (upload.end > fail_time) {
    flight.lost = true;
    flight.arrival_time = fail_time;
    const bool is_crash = faults->crashed_at(c, fail_time);
    flight.lost_cause = is_crash ? "crash" : "dropout";
    if (is_crash) {
      FEDCA_MCOUNT("faults.crashes", 1.0);
    } else {
      FEDCA_MCOUNT("faults.dropouts", 1.0);
    }
    if (tracing) {
      tracer.record_instant(pid, is_crash ? "fault.crash" : "fault.dropout",
                            fail_time, {{"client", std::to_string(c)}});
    }
    if (is_crash) sim::notify_fault_dump();
    in_flight_[c] = std::move(flight);
    return;
  }

  // Cycle timeout: a straggler cycle is cut off and retried rather than
  // blocking the arrival queue for virtual hours.
  if (options_.cycle_timeout != kNoDeadline &&
      upload.end > start + options_.cycle_timeout) {
    flight.lost = true;
    flight.arrival_time = start + options_.cycle_timeout;
    flight.lost_cause = "timeout";
    FEDCA_MCOUNT("async.cycle_timeouts", 1.0);
    if (tracing) {
      tracer.record_instant(pid, "recovery.cycle_timeout", flight.arrival_time,
                            {{"client", std::to_string(c)}});
    }
    in_flight_[c] = std::move(flight);
    return;
  }

  if (tracing) {
    const obs::TraceArgs version{{"version", std::to_string(version_)}};
    tracer.record_span(pid, "download", start, download.end, version);
    tracer.record_span(pid, "compute", download.end, compute_done, version);
    tracer.record_span(pid, "upload", upload.start, upload.end, version);
  }

  flight.arrival_time = upload.end;
  // All cycles launched at the current version share one immutable copy.
  if (snapshot_cache_ == nullptr || snapshot_version_ != version_) {
    snapshot_cache_ = std::make_shared<const nn::ModelState>(global_);
    snapshot_version_ = version_;
  }
  flight.snapshot = snapshot_cache_;
  in_flight_[c] = std::move(flight);
}

std::size_t AsyncEngine::live_clients() const {
  std::size_t live = 0;
  for (const InFlight& f : in_flight_) {
    if (!f.dead) ++live;
  }
  return live;
}

AsyncUpdateRecord AsyncEngine::step() {
  // Earliest arrival wins (ties: lowest client id for determinism);
  // permanently dead clients never arrive.
  std::size_t winner = in_flight_.size();
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < in_flight_.size(); ++c) {
    if (!in_flight_[c].dead && in_flight_[c].arrival_time < best) {
      best = in_flight_[c].arrival_time;
      winner = c;
    }
  }
  if (winner == in_flight_.size()) {
    throw std::runtime_error("AsyncEngine::step: no live clients remain");
  }
  InFlight flight = std::move(in_flight_[winner]);
  clock_ = flight.arrival_time;

  if (flight.lost) {
    // Abandoned cycle: nothing arrives and nothing is applied; the client
    // simply starts over (launch() waits out any dropout window).
    AsyncUpdateRecord record;
    record.client_id = winner;
    record.arrival_time = flight.arrival_time;
    record.downloaded_version = flight.downloaded_version;
    record.applied_version = version_;
    record.staleness = version_ - flight.downloaded_version;
    record.weight = 0.0;
    record.lost = true;
    FEDCA_MCOUNT("faults.async_lost", 1.0);
    report_async_update(report_sequence_, winner, record.arrival_time,
                        record.staleness, 0.0, true,
                        flight.lost_cause[0] != '\0' ? flight.lost_cause
                                                     : "dropout");
    launch(winner, clock_);
    return record;
  }

  // The winner's cycle trains from the snapshot it downloaded; the timing
  // was already committed at launch, so training is time-free and may have
  // happened speculatively in an earlier batch. Install the winner's
  // post-training batch-norm buffers at apply time (arrival order), so the
  // shared model evolves exactly as a serial schedule would leave it.
  if (!flight.trained) train_pending(flight, winner);
  nn::ModelState update = std::move(flight.update);
  if (!flight.buffers.empty()) nn::load_buffers(model_->backbone(), flight.buffers);

  AsyncUpdateRecord record;
  record.client_id = winner;
  record.arrival_time = flight.arrival_time;
  record.downloaded_version = flight.downloaded_version;
  record.staleness = version_ - flight.downloaded_version;
  record.weight =
      options_.mix /
      std::pow(1.0 + static_cast<double>(record.staleness), options_.staleness_power);
  {
    FEDCA_WALL_SPAN("server.apply_async_update");
    nn::state_add_scaled(global_, static_cast<float>(record.weight), update);
  }
  ++version_;
  record.applied_version = version_;
  FEDCA_MCOUNT("async.updates", 1.0);
  FEDCA_MHISTO("async.staleness", 0.0, 64.0, 64,
               static_cast<double>(record.staleness));
  if (obs::metrics_enabled() && tensor::BufferPool::enabled()) {
    tensor::BufferPool::global().publish_metrics();
  }
  if (obs::TraceCollector::global().enabled() && trace_pid_base_ != 0) {
    obs::TraceCollector::global().record_instant(
        trace_pid_base_, "apply_update", clock_,
        {{"client", std::to_string(record.client_id)},
         {"staleness", std::to_string(record.staleness)},
         {"version", std::to_string(record.applied_version)}});
  }
  report_async_update(report_sequence_, winner, record.arrival_time,
                      record.staleness, record.weight, false, "applied");

  launch(winner, clock_);
  return record;
}

std::vector<AsyncUpdateRecord> AsyncEngine::run_updates(std::size_t updates) {
  std::vector<AsyncUpdateRecord> records;
  records.reserve(updates);
  for (std::size_t i = 0; i < updates; ++i) {
    if (live_clients() == 0) break;  // fault injection killed everyone
    records.push_back(step());
  }
  return records;
}

}  // namespace fedca::fl
