#include "fl/fedada.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fedca::fl {

FedAdaScheme::FedAdaScheme(FedAdaOptions options) : options_(options) {
  if (options_.tradeoff < 0.0 || options_.tradeoff > 1.0) {
    throw std::invalid_argument("FedAdaScheme: tradeoff must be in [0, 1]");
  }
  if (options_.min_fraction <= 0.0 || options_.min_fraction > 1.0) {
    throw std::invalid_argument("FedAdaScheme: min_fraction must be in (0, 1]");
  }
}

void FedAdaScheme::bind(std::size_t num_clients, std::size_t nominal_iterations) {
  Scheme::bind(num_clients, nominal_iterations);
  est_iter_seconds_.assign(num_clients, -1.0);
}

RoundPlan FedAdaScheme::plan_round(std::size_t round_index) {
  RoundPlan plan = Scheme::plan_round(round_index);
  plan.deadline = deadline_.estimate();
  if (plan.deadline == kNoDeadline) return plan;  // warm-up: everyone runs K

  const auto K = static_cast<double>(nominal_iterations_);
  const auto k_min = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::floor(options_.min_fraction * K)));
  for (std::size_t c = 0; c < num_clients_; ++c) {
    const double est = est_iter_seconds_[c];
    if (est <= 0.0) continue;  // no knowledge yet; keep full workload
    const double fits_deadline = plan.deadline / est;
    const double blended =
        options_.tradeoff * K + (1.0 - options_.tradeoff) * fits_deadline;
    auto k_i = static_cast<std::size_t>(std::llround(blended));
    k_i = std::clamp<std::size_t>(k_i, k_min, nominal_iterations_);
    plan.iterations[c] = k_i;
  }
  return plan;
}

void FedAdaScheme::observe_round(const RoundRecord& record) {
  std::vector<double> durations;
  durations.reserve(record.clients.size());
  for (const ClientRoundResult& r : record.clients) {
    // Failed clients (fault injection) never delivered: their infinite
    // arrival would poison the deadline estimate and the speed EWMA.
    if (r.failed || !std::isfinite(r.arrival_time)) continue;
    durations.push_back(r.arrival_time - record.start_time);
    if (r.iterations_run > 0) {
      const double per_iter = r.compute_seconds / static_cast<double>(r.iterations_run);
      double& est = est_iter_seconds_.at(r.client_id);
      est = (est <= 0.0) ? per_iter
                         : options_.speed_ewma * per_iter + (1.0 - options_.speed_ewma) * est;
    }
  }
  deadline_.observe_round(durations);
}

double FedAdaScheme::estimated_iteration_seconds(std::size_t client_id) const {
  return est_iter_seconds_.at(client_id);
}

}  // namespace fedca::fl
