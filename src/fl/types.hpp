// Shared record types of the FL framework.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "nn/state.hpp"
#include "tensor/tensor.hpp"

namespace fedca::fl {

inline constexpr double kNoDeadline = std::numeric_limits<double>::infinity();

// How a participant left a round early (fault injection; kNone in the
// fault-free simulation).
enum class ClientFault { kNone, kCrash, kDropout, kLinkOutage };

// One eagerly transmitted layer (Sec. 4.3): which layer, when it was sent
// (iteration + virtual arrival time at the server), and the update value
// that went on the wire.
struct EagerRecord {
  std::size_t layer = 0;
  std::size_t iteration = 0;      // 1-based local iteration of transmission
  double send_time = 0.0;         // virtual time the transfer started
  double arrival_time = 0.0;      // virtual time it fully arrived
  tensor::Tensor value;           // transmitted per-layer update (w_tau - w_0)
  bool retransmitted = false;     // set after the Eq. 6 check
  bool lost = false;              // eager transfer lost in flight (fault)
  bool truncated = false;         // eager transfer corrupted in flight (fault)
};

// What one client contributed to one round, with full system accounting.
struct ClientRoundResult {
  std::size_t client_id = 0;
  // The per-layer update the server will apply for this client (eager
  // values where they stand, final values elsewhere).
  nn::ModelState applied_update;
  // Aggregation weight (local dataset size).
  double weight = 1.0;
  // Virtual time the server has the complete update.
  double arrival_time = 0.0;

  // --- bookkeeping for figures/tables ---
  std::size_t iterations_run = 0;
  std::size_t planned_iterations = 0;
  bool early_stopped = false;
  double download_done = 0.0;
  double compute_done = 0.0;       // end of last local iteration
  double compute_seconds = 0.0;    // compute_done - download_done
  double bytes_sent = 0.0;         // uplink payload incl. retransmissions
  double eager_bytes = 0.0;        // eager-transmission share of bytes_sent
  double mean_local_loss = 0.0;
  std::vector<EagerRecord> eager;  // one entry per eagerly transmitted layer
  std::size_t retransmitted_layers = 0;

  // --- fault accounting (all default when no injector is installed) ---
  bool failed = false;             // client never delivered a usable update
  ClientFault fault = ClientFault::kNone;
  double fail_time = kNoDeadline;  // virtual time the fault struck
};

// Everything that happened in one round.
struct RoundRecord {
  std::size_t round_index = 0;
  double start_time = 0.0;
  double end_time = 0.0;           // server finished collecting the quorum
  double deadline = kNoDeadline;   // T_R announced at round start
  // Availability accounting (zero unless the cluster's availability layer
  // is on): total population size and how many sampled clients were
  // offline at round start and therefore skipped.
  std::size_t population = 0;
  std::size_t offline = 0;
  std::vector<ClientRoundResult> clients;   // every participant
  std::vector<std::size_t> collected;       // indices into `clients` aggregated
  // Normalized aggregation weight per collected entry (sums to 1 whenever
  // `collected` is non-empty); parallel to `collected`.
  std::vector<double> collected_weights;
  double duration() const { return end_time - start_time; }
};

// Accuracy trajectory sample (Fig. 7 / Table 1 raw data).
struct EvalPoint {
  std::size_t round_index = 0;
  double virtual_time = 0.0;   // at round end
  double accuracy = 0.0;
  double loss = 0.0;
};

}  // namespace fedca::fl
