// Asynchronous FL engine (FedAsync/Papaya-style baseline).
//
// Sec. 6 of the paper contrasts FedCA with asynchronous training: "each
// client can proceed independently without waiting for others. Yet,
// asynchronous updating may incur stale parameters and compromise the
// training accuracy." This engine implements that alternative so the
// claim is testable (bench/ext_async):
//
//   * every client loops independently — download the current global,
//     train K local iterations, upload;
//   * the server applies each update the moment it arrives, scaled by a
//     staleness-discounted mixing weight
//         w = mix / (1 + staleness)^staleness_power
//     where staleness = number of global versions applied since the
//     client downloaded (FedAsync's polynomial discount);
//   * no rounds, no deadlines, no waiting — and no round-structure for
//     FedCA-style intra-round autonomy to exploit.
//
// Simulation: clients' in-flight work is tracked as (arrival time, the
// downloaded snapshot); arrivals are processed in virtual-time order, so
// the run is deterministic.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "data/dataset.hpp"
#include "data/loader.hpp"
#include "fl/types.hpp"
#include "nn/models.hpp"
#include "nn/sgd.hpp"
#include "sim/cluster.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace fedca::fl {

struct AsyncEngineOptions {
  std::size_t local_iterations = 30;  // K per cycle
  std::size_t batch_size = 10;
  nn::SgdOptions optimizer;
  // Base mixing weight (FedAsync's alpha).
  double mix = 0.6;
  // Polynomial staleness discount exponent (0 = ignore staleness).
  double staleness_power = 0.5;
  double upload_header_bytes = 512.0;
  // Cap on one client cycle (download + compute + upload). A cycle that
  // would run longer is abandoned at start + cycle_timeout and the client
  // relaunched; kNoDeadline (default) keeps behavior bit-identical.
  double cycle_timeout = kNoDeadline;
  // Worker threads for speculative parallel training of in-flight cycles:
  // 0 resolves through FEDCA_THREADS (falling back to hardware
  // concurrency), 1 forces serial. When a winner's update is not yet
  // cached, the engine batch-trains EVERY untrained live in-flight cycle
  // concurrently on model replicas — each cycle's update depends only on
  // its own snapshot and its client's private loader stream, so results
  // are bit-identical for any worker count. Requires a cloneable model;
  // otherwise cycles train serially at arrival (legacy behavior).
  std::size_t worker_threads = 0;
  // Cap on how many cycles one speculative batch may train (winner plus
  // the earliest-arriving others). 0 = unlimited, the historical behavior;
  // a bound keeps one batch's replica/update memory O(cap) when the
  // population is huge. Training remains bit-identical per cycle — only
  // *when* a cycle trains (speculatively vs at its own arrival) changes.
  std::size_t speculative_cap = 0;
};

struct AsyncUpdateRecord {
  std::size_t client_id = 0;
  double arrival_time = 0.0;
  std::size_t downloaded_version = 0;
  std::size_t applied_version = 0;  // global version after applying
  std::size_t staleness = 0;
  double weight = 0.0;              // effective mixing weight used
  // The cycle was abandoned (dropout/crash mid-cycle or cycle timeout):
  // nothing was trained or applied and the global version did not move.
  bool lost = false;
};

class AsyncEngine {
 public:
  AsyncEngine(nn::Classifier* model, sim::Cluster* cluster,
              std::vector<data::Dataset> shards, AsyncEngineOptions options,
              util::Rng rng);

  // Processes the next arriving client update: applies it to the global
  // model and immediately relaunches that client. Returns the record (a
  // `lost` record when the cycle was abandoned — nothing applied). Throws
  // when every client is permanently dead.
  AsyncUpdateRecord step();

  // Runs until `updates` arrivals have been processed, stopping early if
  // no live clients remain.
  std::vector<AsyncUpdateRecord> run_updates(std::size_t updates);

  double now() const { return clock_; }
  std::size_t global_version() const { return version_; }
  const nn::ModelState& global_state() const { return global_; }
  // Clients not permanently crashed / cut off (fault injection).
  std::size_t live_clients() const;
  void load_global_into_model();

 private:
  struct InFlight {
    double arrival_time = 0.0;
    std::size_t downloaded_version = 0;
    // The global the client trained from. Shared: every cycle launched at
    // the same global version points at one immutable copy, so in-flight
    // memory is O(distinct versions), not O(clients) x O(model).
    std::shared_ptr<const nn::ModelState> snapshot;
    bool lost = false;        // cycle abandoned at arrival_time
    // Why the cycle was abandoned ("crash"/"dropout"/"timeout"); points at
    // a string literal, consumed by the RoundReport pipeline.
    const char* lost_cause = "";
    bool dead = false;        // client permanently out (crash / dead link)
    // Speculative training cache: the cycle's SGD result (and the replica's
    // batch-norm buffers) once a batch-training pass has run it.
    bool trained = false;
    nn::ModelState update;
    std::vector<double> buffers;
  };

  // Starts client `c`'s next cycle at virtual time `t`.
  void launch(std::size_t c, double t);
  // Runs client c's K-iteration SGD pass on `net` (already loaded with the
  // cycle's snapshot), pulling batches from the client's loader stream.
  void train_cycle(nn::Classifier& net, std::size_t c);
  // Trains `winner_flight` (client `winner`) plus every other untrained
  // live in-flight cycle, concurrently on replicas when the model is
  // cloneable. Fills each flight's `update` / `buffers` / `trained`.
  void train_pending(InFlight& winner_flight, std::size_t winner);
  std::unique_ptr<nn::Classifier> acquire_replica();
  void release_replica(std::unique_ptr<nn::Classifier> replica);
  util::ThreadPool& dispatch_pool(std::size_t workers);

  nn::Classifier* model_;
  sim::Cluster* cluster_;
  std::vector<data::Dataset> shards_;
  AsyncEngineOptions options_;
  // Legacy clusters: one persistent loader per client. Compact clusters:
  // loaders are rebuilt per training pass from loader_rng_'s pure
  // per-client fork plus the stored cursor (same scheme as RoundEngine).
  std::vector<data::BatchLoader> loaders_;
  util::Rng loader_rng_;
  std::vector<data::BatchLoader::Cursor> loader_cursors_;
  std::vector<InFlight> in_flight_;  // one slot per client
  nn::ModelState global_;
  // Shared snapshot of `global_` at `snapshot_version_`, handed to every
  // cycle launched before the next version bump.
  std::shared_ptr<const nn::ModelState> snapshot_cache_;
  std::size_t snapshot_version_ = 0;
  std::size_t version_ = 0;
  double clock_ = 0.0;
  // Trace pids (server + one per client), reserved lazily on the first
  // launch that finds the trace collector armed. 0 = not yet reserved.
  std::uint32_t trace_pid_base_ = 0;
  // Monotone sequence number for run-report async_update lines (applied,
  // lost, and permanently-dead records all consume one).
  std::size_t report_sequence_ = 0;
  // Replica free-list for speculative parallel training.
  util::Mutex replica_mutex_;
  std::vector<std::unique_ptr<nn::Classifier>> replicas_ FEDCA_GUARDED_BY(replica_mutex_);
  bool clone_checked_ = false;
  bool cloneable_ = false;
  std::unique_ptr<util::ThreadPool> own_pool_;
};

}  // namespace fedca::fl
