#include "fl/deadline.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace fedca::fl {

DeadlineEstimator::DeadlineEstimator(std::size_t history_rounds, double min_fraction)
    : history_rounds_(history_rounds), min_fraction_(min_fraction) {
  if (history_rounds_ == 0) {
    throw std::invalid_argument("DeadlineEstimator: history_rounds must be > 0");
  }
  if (min_fraction_ <= 0.0 || min_fraction_ > 1.0) {
    throw std::invalid_argument("DeadlineEstimator: min_fraction must be in (0, 1]");
  }
}

void DeadlineEstimator::observe_round(const std::vector<double>& durations) {
  // Non-finite samples (clients that never delivered under fault
  // injection) carry no pacing information and would make every candidate
  // deadline look infinitely generous — drop them at the door.
  std::vector<double> finite;
  finite.reserve(durations.size());
  for (const double d : durations) {
    if (std::isfinite(d)) finite.push_back(d);
  }
  if (finite.empty()) return;
  window_.push_back(std::move(finite));
  while (window_.size() > history_rounds_) window_.pop_front();
}

double DeadlineEstimator::estimate() const {
  if (window_.empty()) return std::numeric_limits<double>::infinity();
  std::vector<double> all;
  for (const auto& round : window_) {
    all.insert(all.end(), round.begin(), round.end());
  }
  std::sort(all.begin(), all.end());
  const auto n = static_cast<double>(all.size());
  // Smallest candidate index allowed by min_fraction.
  const auto first_allowed =
      static_cast<std::size_t>(std::ceil(min_fraction_ * n)) - 1;

  double best_deadline = all.back();
  double best_ratio = -1.0;
  for (std::size_t i = first_allowed; i < all.size(); ++i) {
    const double d = all[i];
    if (d <= 0.0) continue;
    // count(d_j <= d) is at least i+1 (duplicates included by upper_bound).
    const auto count = static_cast<double>(
        std::upper_bound(all.begin(), all.end(), d) - all.begin());
    const double ratio = count / d;
    if (ratio > best_ratio) {
      best_ratio = ratio;
      best_deadline = d;
    }
  }
  return best_deadline;
}

}  // namespace fedca::fl
