#include "fl/scheme.hpp"

#include <stdexcept>

namespace fedca::fl {

RoundPlan Scheme::plan_round(std::size_t /*round_index*/) {
  if (num_clients_ == 0) {
    throw std::logic_error("Scheme::plan_round called before bind()");
  }
  RoundPlan plan;
  plan.deadline = kNoDeadline;
  plan.iterations.assign(num_clients_, nominal_iterations_);
  return plan;
}

ClientPolicy& Scheme::client_policy(std::size_t /*client_id*/) { return default_policy_; }

CompressedScheme::CompressedScheme(std::unique_ptr<Scheme> inner, CompressionSpec spec,
                                   std::uint64_t seed)
    : inner_(std::move(inner)), spec_(std::move(spec)), seed_(seed) {
  if (!inner_) throw std::invalid_argument("CompressedScheme: null inner scheme");
  // Validate the spec eagerly by constructing one throwaway codec.
  (void)fl::make_compressor(spec_.kind, spec_.qsgd_levels, spec_.topk_fraction,
                            util::Rng(seed_));
}

std::string CompressedScheme::name() const {
  return inner_->name() + "+" + spec_.kind;
}

void CompressedScheme::bind(std::size_t num_clients, std::size_t nominal_iterations) {
  Scheme::bind(num_clients, nominal_iterations);
  inner_->bind(num_clients, nominal_iterations);
}

RoundPlan CompressedScheme::plan_round(std::size_t round_index) {
  return inner_->plan_round(round_index);
}

ClientPolicy& CompressedScheme::client_policy(std::size_t client_id) {
  return inner_->client_policy(client_id);
}

nn::SgdOptions CompressedScheme::local_optimizer(const nn::SgdOptions& base) {
  return inner_->local_optimizer(base);
}

void CompressedScheme::observe_round(const RoundRecord& record) {
  inner_->observe_round(record);
}

std::unique_ptr<UpdateCompressor> CompressedScheme::make_compressor(
    std::size_t client_id, std::size_t round_index) {
  // Per-(client, round) stream keeps stochastic quantization deterministic.
  util::Rng root(seed_);
  return fl::make_compressor(spec_.kind, spec_.qsgd_levels, spec_.topk_fraction,
                             root.fork(client_id * 100003 + round_index));
}

}  // namespace fedca::fl
