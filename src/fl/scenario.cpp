#include "fl/scenario.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "sim/scenario.hpp"

namespace fedca::fl {

namespace {

using sim::scenario::Document;
using sim::scenario::ScenarioError;

constexpr double kMaxD = std::numeric_limits<double>::max();

// Scheme names accepted by core::make_scheme. fl cannot depend on core
// (core depends on fl), so the list is mirrored here; core_fedca_test's
// factory coverage plus fl_scenario_test keep the two in sync.
const char* const kSchemeNames[] = {"fedavg",   "fedprox",  "fedada",
                                    "fedca",    "fedca_v1", "fedca_v2",
                                    "fedca_v3", "fedca_lr"};

// [scheme] hyperparameters that pass through to core::make_scheme's
// Config. A closed list so typos stay hard errors.
const char* const kSchemeParams[] = {
    "fedca_beta",        "fedca_min_iterations", "fedca_te",
    "fedca_tr",          "fedca_period",         "fedca_sample_fraction",
    "fedca_sample_cap",  "fedca_lr_threshold",   "fedca_lr_decay",
    "fedprox_mu",        "fedada_tradeoff",      "fedada_min_fraction",
    "compress",          "compress_levels",      "compress_fraction"};

bool known_scheme(const std::string& name) {
  for (const char* s : kSchemeNames) {
    if (name == s) return true;
  }
  return false;
}

bool known_scheme_param(const std::string& key) {
  for (const char* s : kSchemeParams) {
    if (key == s) return true;
  }
  return false;
}

// Shortest decimal string that parses back to exactly `v` — canonical
// serialization must be stable under parse/serialize cycles.
std::string format_double(double v) {
  if (std::isinf(v)) return "none";
  for (int precision = 1; precision <= 17; ++precision) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) return buf;
  }
  return "0";  // unreachable: %.17g always round-trips finite doubles
}

std::string model_key(nn::ModelKind kind) {
  switch (kind) {
    case nn::ModelKind::kCnn: return "cnn";
    case nn::ModelKind::kLstm: return "lstm";
    case nn::ModelKind::kWrn: return "wrn";
  }
  return "cnn";
}

std::string tensor_pool_key(int option) {
  if (option > 0) return "on";
  if (option == 0) return "off";
  return "auto";
}

}  // namespace

Scenario parse_scenario(const std::string& text, const std::string& filename) {
  Document doc = Document::parse(text, filename);
  Scenario sc;
  ExperimentOptions& o = sc.options;

  // [scenario] — required, versioned.
  if (!doc.has_section("scenario")) {
    throw ScenarioError(doc.filename(), 0,
                        "missing required [scenario] section "
                        "(with `version = 1`)");
  }
  const long long version =
      doc.get_int("scenario", "version", 0, std::numeric_limits<long long>::min(),
                  std::numeric_limits<long long>::max());
  if (version != 1) {
    const std::size_t line = doc.line_of("scenario", "version");
    throw ScenarioError(doc.filename(), line,
                        "unsupported scenario version " +
                            std::to_string(version) +
                            " (this build reads version 1; the key is "
                            "required)");
  }
  sc.name = doc.get_string("scenario", "name", "");
  sc.description = doc.get_string("scenario", "description", "");

  // [run]
  doc.allow_section("run");
  o.seed = doc.get_u64("run", "seed", o.seed);
  const std::string engine = doc.get_string("run", "engine", "round");
  if (engine == "async") {
    sc.async_engine = true;
  } else if (engine != "round") {
    throw ScenarioError(doc.filename(), doc.line_of("run", "engine"),
                        "key 'engine': expected round or async, got '" +
                            engine + "'");
  }
  o.max_rounds = doc.get_size("run", "rounds", o.max_rounds, 1, 1000000);
  o.target_accuracy = doc.get_double("run", "target_accuracy",
                                     o.target_accuracy, 0.0, 1.0);
  o.accuracy_smoothing =
      doc.get_size("run", "accuracy_smoothing", o.accuracy_smoothing, 1, 1000);
  o.eval_every = doc.get_size("run", "eval_every", o.eval_every, 1, 1000000);
  o.worker_threads = doc.get_size("run", "workers", o.worker_threads, 0, 4096);
  const std::string pool = doc.get_string("run", "tensor_pool", "auto");
  if (pool == "on") {
    o.tensor_pool = 1;
  } else if (pool == "off") {
    o.tensor_pool = 0;
  } else if (pool == "auto") {
    o.tensor_pool = -1;
  } else {
    throw ScenarioError(doc.filename(), doc.line_of("run", "tensor_pool"),
                        "key 'tensor_pool': expected auto, on, or off, got '" +
                            pool + "'");
  }

  // [model]
  doc.allow_section("model");
  const std::string kind = doc.get_string("model", "kind", "cnn");
  try {
    o.model = nn::parse_model_kind(kind);
  } catch (const std::invalid_argument&) {
    throw ScenarioError(doc.filename(), doc.line_of("model", "kind"),
                        "key 'kind': expected cnn, lstm, or wrn, got '" +
                            kind + "'");
  }
  o.data_spec.num_classes =
      doc.get_size("model", "classes", o.data_spec.num_classes, 2, 10000);
  o.data_spec.noise_stddev =
      doc.get_double("model", "noise", o.data_spec.noise_stddev, 0.0, 100.0);
  o.data_spec.amplitude_lo = doc.get_double("model", "amplitude_lo",
                                            o.data_spec.amplitude_lo, 0.0, 100.0);
  o.data_spec.amplitude_hi = doc.get_double("model", "amplitude_hi",
                                            o.data_spec.amplitude_hi, 0.0, 100.0);
  if (o.data_spec.amplitude_hi < o.data_spec.amplitude_lo) {
    throw ScenarioError(doc.filename(), doc.line_of("model", "amplitude_hi"),
                        "key 'amplitude_hi': must be >= amplitude_lo");
  }

  // [data]
  doc.allow_section("data");
  o.num_clients = doc.get_size("data", "clients", o.num_clients, 1, 10000000);
  o.train_samples =
      doc.get_size("data", "train_samples", o.train_samples, 1, 100000000);
  o.test_samples =
      doc.get_size("data", "test_samples", o.test_samples, 1, 100000000);
  o.dirichlet_alpha =
      doc.get_double("data", "alpha", o.dirichlet_alpha, 1e-6, 1000.0);
  o.batch_size = doc.get_size("data", "batch", o.batch_size, 1, 1000000);

  // [training]
  doc.allow_section("training");
  o.local_iterations =
      doc.get_size("training", "local_iterations", o.local_iterations, 1,
                   1000000);
  o.optimizer.learning_rate =
      doc.get_double("training", "lr", o.optimizer.learning_rate, 0.0, 1000.0);
  o.optimizer.weight_decay = doc.get_double(
      "training", "weight_decay", o.optimizer.weight_decay, 0.0, 1.0);
  o.optimizer.prox_mu =
      doc.get_double("training", "prox_mu", o.optimizer.prox_mu, 0.0, 1000.0);
  const std::string wire =
      doc.get_string("training", "eager_wire", eager_wire_name(o.eager_wire));
  try {
    o.eager_wire = parse_eager_wire(wire);
  } catch (const std::invalid_argument&) {
    throw ScenarioError(doc.filename(), doc.line_of("training", "eager_wire"),
                        "key 'eager_wire': expected fp32 or int8, got '" +
                            wire + "'");
  }

  // [server]
  doc.allow_section("server");
  o.collect_fraction =
      doc.get_double("server", "collect_fraction", o.collect_fraction, 0.0, 1.0);
  o.participation_fraction = doc.get_double(
      "server", "participation", o.participation_fraction, 0.0, 1.0);
  o.upload_timeout = doc.get_duration("server", "upload_timeout",
                                      o.upload_timeout);

  // [scheme] — name plus whitelisted passthrough.
  doc.allow_section("scheme");
  sc.scheme = doc.get_string("scheme", "name", sc.scheme);
  if (!known_scheme(sc.scheme)) {
    throw ScenarioError(doc.filename(), doc.line_of("scheme", "name"),
                        "key 'name': unknown scheme '" + sc.scheme + "'");
  }
  for (const auto& [key, entry] : doc.remaining("scheme")) {
    if (!known_scheme_param(key)) {
      throw ScenarioError(doc.filename(), entry.line,
                          "unknown scheme parameter '" + key + "' in [scheme]");
    }
    sc.scheme_params[key] = doc.get_string("scheme", key, "");
  }

  // [cluster]
  doc.allow_section("cluster");
  sim::ClusterOptions& cl = o.cluster;
  cl.link_latency_seconds = doc.get_double(
      "cluster", "link_latency", cl.link_latency_seconds, 0.0, 3600.0);
  cl.heterogeneity.speed_sigma = doc.get_double(
      "cluster", "speed_sigma", cl.heterogeneity.speed_sigma, 0.0, 10.0);
  cl.heterogeneity.min_speed = doc.get_double(
      "cluster", "min_speed", cl.heterogeneity.min_speed, 1e-6, 1000.0);
  cl.heterogeneity.max_speed = doc.get_double(
      "cluster", "max_speed", cl.heterogeneity.max_speed, 1e-6, 1000.0);
  if (cl.heterogeneity.max_speed < cl.heterogeneity.min_speed) {
    throw ScenarioError(doc.filename(), doc.line_of("cluster", "max_speed"),
                        "key 'max_speed': must be >= min_speed");
  }
  cl.heterogeneity.bandwidth_mbps = doc.get_double(
      "cluster", "bandwidth_mbps", cl.heterogeneity.bandwidth_mbps, 1e-6,
      1e6);
  cl.dynamicity.enabled =
      doc.get_bool("cluster", "dynamicity", cl.dynamicity.enabled);
  cl.dynamicity.slowdown_lo = doc.get_double(
      "cluster", "slowdown_lo", cl.dynamicity.slowdown_lo, 1.0, 1000.0);
  cl.dynamicity.slowdown_hi = doc.get_double(
      "cluster", "slowdown_hi", cl.dynamicity.slowdown_hi, 1.0, 1000.0);
  if (cl.dynamicity.slowdown_hi < cl.dynamicity.slowdown_lo) {
    throw ScenarioError(doc.filename(), doc.line_of("cluster", "slowdown_hi"),
                        "key 'slowdown_hi': must be >= slowdown_lo");
  }

  // [population] — million-client scale-out knobs: the compact client
  // registry and the availability-dynamics layer. Absent section keeps the
  // legacy representation and no availability gating (bit-identical runs).
  doc.allow_section("population");
  cl.compact = doc.get_bool("population", "registry", cl.compact);
  sim::AvailabilityOptions& av = cl.availability;
  av.enabled = doc.get_bool("population", "availability", av.enabled);
  av.mean_on = doc.get_double("population", "mean_on", av.mean_on, 1e-6, kMaxD);
  av.mean_off =
      doc.get_double("population", "mean_off", av.mean_off, 1e-6, kMaxD);
  av.day_period =
      doc.get_double("population", "day_period", av.day_period, 1e-6, kMaxD);
  av.day_amplitude = doc.get_double("population", "day_amplitude",
                                    av.day_amplitude, 0.0, 0.9);
  av.outage_groups = doc.get_size("population", "outage_groups",
                                  av.outage_groups, 0, 1000000);
  av.outage_rate =
      doc.get_double("population", "outage_rate", av.outage_rate, 0.0, 1e6);
  av.outage_mean =
      doc.get_double("population", "outage_mean", av.outage_mean, 0.0, kMaxD);
  av.seed = doc.get_u64("population", "seed", av.seed);

  // [faults]
  doc.allow_section("faults");
  sim::FaultScheduleOptions& f = o.faults;
  f.enabled = doc.get_bool("faults", "enabled", f.enabled);
  f.horizon_seconds =
      doc.get_double("faults", "horizon", f.horizon_seconds, 0.0, kMaxD);
  f.crash_fraction =
      doc.get_double("faults", "crash_fraction", f.crash_fraction, 0.0, 1.0);
  f.dropouts_per_client = doc.get_double(
      "faults", "dropouts_per_client", f.dropouts_per_client, 0.0, 1e6);
  f.dropout_mean_seconds = doc.get_double(
      "faults", "dropout_mean", f.dropout_mean_seconds, 0.0, kMaxD);
  f.slowdowns_per_client = doc.get_double(
      "faults", "slowdowns_per_client", f.slowdowns_per_client, 0.0, 1e6);
  f.slowdown_mean_seconds = doc.get_double(
      "faults", "slowdown_mean", f.slowdown_mean_seconds, 0.0, kMaxD);
  f.slowdown_factor_lo = doc.get_double(
      "faults", "slowdown_factor_lo", f.slowdown_factor_lo, 1.0, 1e6);
  f.slowdown_factor_hi = doc.get_double(
      "faults", "slowdown_factor_hi", f.slowdown_factor_hi, 1.0, 1e6);
  f.link_faults_per_client = doc.get_double(
      "faults", "link_faults_per_client", f.link_faults_per_client, 0.0, 1e6);
  f.link_fault_mean_seconds = doc.get_double(
      "faults", "link_fault_mean", f.link_fault_mean_seconds, 0.0, kMaxD);
  f.link_factor_lo =
      doc.get_double("faults", "link_factor_lo", f.link_factor_lo, 0.0, 1.0);
  f.link_factor_hi =
      doc.get_double("faults", "link_factor_hi", f.link_factor_hi, 0.0, 1.0);
  f.eager_loss_probability = doc.get_double(
      "faults", "eager_loss", f.eager_loss_probability, 0.0, 1.0);
  f.eager_truncate_probability = doc.get_double(
      "faults", "eager_truncate", f.eager_truncate_probability, 0.0, 1.0);
  f.seed = doc.get_u64("faults", "seed", f.seed);

  // [async]
  doc.allow_section("async");
  if (doc.has_section("async") && !sc.async_engine) {
    throw ScenarioError(doc.filename(), 0,
                        "[async] section requires `engine = async` in [run]");
  }
  sc.async_updates = doc.get_size("async", "updates", sc.async_updates, 1,
                                  100000000);
  sc.async.local_iterations = doc.get_size(
      "async", "local_iterations", o.local_iterations, 1, 1000000);
  sc.async.batch_size = doc.get_size("async", "batch", o.batch_size, 1,
                                     1000000);
  sc.async.mix = doc.get_double("async", "mix", sc.async.mix, 0.0, 1.0);
  sc.async.staleness_power = doc.get_double(
      "async", "staleness_power", sc.async.staleness_power, 0.0, 100.0);
  sc.async.cycle_timeout =
      doc.get_duration("async", "cycle_timeout", sc.async.cycle_timeout);

  // [observability]
  doc.allow_section("observability");
  o.trace_path = doc.get_string("observability", "trace", o.trace_path);
  o.metrics_path = doc.get_string("observability", "metrics", o.metrics_path);
  o.report_path = doc.get_string("observability", "report", o.report_path);

  doc.finish();
  return sc;
}

Scenario load_scenario_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw ScenarioError(path, 0, "cannot open scenario file");
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_scenario(text.str(), path);
}

std::string to_string(const Scenario& sc) {
  const ExperimentOptions& o = sc.options;
  std::ostringstream out;
  const auto kv = [&out](const char* key, const std::string& value) {
    out << key << " = " << value << "\n";
  };
  const auto kvd = [&kv](const char* key, double v) { kv(key, format_double(v)); };
  const auto kvz = [&kv](const char* key, std::size_t v) {
    kv(key, std::to_string(v));
  };
  const auto kvb = [&kv](const char* key, bool v) {
    kv(key, v ? "true" : "false");
  };

  out << "[scenario]\n";
  kv("version", "1");
  if (!sc.name.empty()) kv("name", sc.name);
  if (!sc.description.empty()) kv("description", sc.description);

  out << "\n[run]\n";
  kv("seed", std::to_string(o.seed));
  kv("engine", sc.async_engine ? "async" : "round");
  kvz("rounds", o.max_rounds);
  kvd("target_accuracy", o.target_accuracy);
  kvz("accuracy_smoothing", o.accuracy_smoothing);
  kvz("eval_every", o.eval_every);
  kvz("workers", o.worker_threads);
  kv("tensor_pool", tensor_pool_key(o.tensor_pool));

  out << "\n[model]\n";
  kv("kind", model_key(o.model));
  kvz("classes", o.data_spec.num_classes);
  kvd("noise", o.data_spec.noise_stddev);
  kvd("amplitude_lo", o.data_spec.amplitude_lo);
  kvd("amplitude_hi", o.data_spec.amplitude_hi);

  out << "\n[data]\n";
  kvz("clients", o.num_clients);
  kvz("train_samples", o.train_samples);
  kvz("test_samples", o.test_samples);
  kvd("alpha", o.dirichlet_alpha);
  kvz("batch", o.batch_size);

  out << "\n[training]\n";
  kvz("local_iterations", o.local_iterations);
  kvd("lr", o.optimizer.learning_rate);
  kvd("weight_decay", o.optimizer.weight_decay);
  kvd("prox_mu", o.optimizer.prox_mu);
  kv("eager_wire", eager_wire_name(o.eager_wire));

  out << "\n[server]\n";
  kvd("collect_fraction", o.collect_fraction);
  kvd("participation", o.participation_fraction);
  kvd("upload_timeout", o.upload_timeout);

  out << "\n[scheme]\n";
  kv("name", sc.scheme);
  for (const auto& [key, value] : sc.scheme_params) {
    kv(key.c_str(), value);
  }

  out << "\n[cluster]\n";
  const sim::ClusterOptions& cl = o.cluster;
  kvd("link_latency", cl.link_latency_seconds);
  kvd("speed_sigma", cl.heterogeneity.speed_sigma);
  kvd("min_speed", cl.heterogeneity.min_speed);
  kvd("max_speed", cl.heterogeneity.max_speed);
  kvd("bandwidth_mbps", cl.heterogeneity.bandwidth_mbps);
  kvb("dynamicity", cl.dynamicity.enabled);
  kvd("slowdown_lo", cl.dynamicity.slowdown_lo);
  kvd("slowdown_hi", cl.dynamicity.slowdown_hi);

  if (cl.compact || cl.availability.enabled) {
    const sim::AvailabilityOptions& av = cl.availability;
    out << "\n[population]\n";
    kvb("registry", cl.compact);
    kvb("availability", av.enabled);
    kvd("mean_on", av.mean_on);
    kvd("mean_off", av.mean_off);
    kvd("day_period", av.day_period);
    kvd("day_amplitude", av.day_amplitude);
    kvz("outage_groups", av.outage_groups);
    kvd("outage_rate", av.outage_rate);
    kvd("outage_mean", av.outage_mean);
    kv("seed", std::to_string(av.seed));
  }

  if (o.faults.enabled) {
    const sim::FaultScheduleOptions& f = o.faults;
    out << "\n[faults]\n";
    kvb("enabled", true);
    kvd("horizon", f.horizon_seconds);
    kvd("crash_fraction", f.crash_fraction);
    kvd("dropouts_per_client", f.dropouts_per_client);
    kvd("dropout_mean", f.dropout_mean_seconds);
    kvd("slowdowns_per_client", f.slowdowns_per_client);
    kvd("slowdown_mean", f.slowdown_mean_seconds);
    kvd("slowdown_factor_lo", f.slowdown_factor_lo);
    kvd("slowdown_factor_hi", f.slowdown_factor_hi);
    kvd("link_faults_per_client", f.link_faults_per_client);
    kvd("link_fault_mean", f.link_fault_mean_seconds);
    kvd("link_factor_lo", f.link_factor_lo);
    kvd("link_factor_hi", f.link_factor_hi);
    kvd("eager_loss", f.eager_loss_probability);
    kvd("eager_truncate", f.eager_truncate_probability);
    kv("seed", std::to_string(f.seed));
  }

  if (sc.async_engine) {
    out << "\n[async]\n";
    kvz("updates", sc.async_updates);
    kvz("local_iterations", sc.async.local_iterations);
    kvz("batch", sc.async.batch_size);
    kvd("mix", sc.async.mix);
    kvd("staleness_power", sc.async.staleness_power);
    kvd("cycle_timeout", sc.async.cycle_timeout);
  }

  if (!o.trace_path.empty() || !o.metrics_path.empty() ||
      !o.report_path.empty()) {
    out << "\n[observability]\n";
    if (!o.trace_path.empty()) kv("trace", o.trace_path);
    if (!o.metrics_path.empty()) kv("metrics", o.metrics_path);
    if (!o.report_path.empty()) kv("report", o.report_path);
  }

  return out.str();
}

ExperimentOptions resolve_options(const Scenario& sc) {
  ExperimentOptions o = sc.options;
  // Environment tier: scenario < env. (Programmatic overrides, applied by
  // the caller on the returned struct, beat both — matching the pinned
  // explicit-beats-env contract of obs::configure / resolve_workers /
  // BufferPool::configure_from_option.)
  if (const char* env = std::getenv("FEDCA_TRACE")) o.trace_path = env;
  if (const char* env = std::getenv("FEDCA_METRICS")) o.metrics_path = env;
  if (const char* env = std::getenv("FEDCA_REPORT")) o.report_path = env;
  if (const char* env = std::getenv("FEDCA_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      o.worker_threads = static_cast<std::size_t>(v);
    }
  }
  if (const char* env = std::getenv("FEDCA_TENSOR_POOL")) {
    // Same truthiness rule as BufferPool::configure_from_option:
    // ""/0/false/off => off, anything else => on.
    const std::string v = env;
    const bool on = !(v.empty() || v == "0" || v == "false" || v == "off");
    o.tensor_pool = on ? 1 : 0;
  }
  return o;
}

util::Config scheme_config(const Scenario& sc) {
  util::Config config;
  for (const auto& [key, value] : sc.scheme_params) {
    config.set(key, value);
  }
  return config;
}

}  // namespace fedca::fl
