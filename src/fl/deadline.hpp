// FedBalancer-style round-deadline estimation (Sec. 4.2, Eq. 3 context).
//
// "We determine T_R by maximizing the ratio of the estimated number of
// clients that can finish before T_R to T_R itself." The estimator feeds
// on the previous rounds' observed per-client completion durations
// (round-relative). The chosen deadline is the candidate duration d among
// the observations maximizing count(d_i <= d) / d — neither so early that
// too few updates arrive, nor so late that stragglers dominate.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

namespace fedca::fl {

class DeadlineEstimator {
 public:
  // `history_rounds` — how many recent rounds of duration observations are
  // retained; `min_fraction` — the deadline is never allowed to cut off
  // more than (1 - min_fraction) of clients.
  explicit DeadlineEstimator(std::size_t history_rounds = 3, double min_fraction = 0.5);

  // Records one round's per-client completion durations (arrival - start).
  void observe_round(const std::vector<double>& durations);

  bool has_estimate() const { return !window_.empty(); }

  // Round-relative deadline T_R. Returns +infinity until observations
  // exist (the first round runs without a deadline, matching the paper's
  // warm-up behaviour).
  double estimate() const;

 private:
  std::size_t history_rounds_;
  double min_fraction_;
  std::deque<std::vector<double>> window_;
};

}  // namespace fedca::fl
