// FedAvg-style update aggregation with partial collection.
//
// The server applies the weighted mean of collected client updates to the
// global model. Following the paper's setup (Sec. 5.1), the server waits
// only for the earliest `collect_fraction` (90 %) of participant updates;
// later arrivals are dropped for that round.
#pragma once

#include <cstddef>
#include <vector>

#include "fl/types.hpp"
#include "nn/state.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace fedca::fl {

// Quota of the earliest-arrival rule: ceil(fraction * quota_base),
// clamped to at least 1 (fraction itself clamped to (0, 1]). Must match
// select_earliest's internal computation exactly.
std::size_t collect_quota(std::size_t quota_base, double fraction);

// Indices of the earliest ceil(fraction * n) results by arrival time
// (ties broken by client id for determinism). fraction is clamped to
// (0, 1]; n == 0 yields empty.
std::vector<std::size_t> select_earliest(const std::vector<ClientRoundResult>& results,
                                         double fraction);

// Fault-aware variant: the quota is still ceil(fraction * quota_base) —
// the *planned* participant count — but only `candidates` (survivors of
// fault filtering) are eligible, so the selection shrinks further when
// fewer than the quota survive. With candidates covering all results and
// quota_base == results.size() this reduces exactly to the overload above.
std::vector<std::size_t> select_earliest(const std::vector<ClientRoundResult>& results,
                                         const std::vector<std::size_t>& candidates,
                                         std::size_t quota_base, double fraction);

// Weighted mean of the selected updates, added in place to `global`.
// Weights are each client's `weight` (dataset size), normalized over the
// selected subset. Returns the normalized weight per selected entry
// (parallel to `selected`; sums to 1). Throws if `selected` is empty or
// layouts mismatch.
std::vector<double> apply_aggregated_update(nn::ModelState& global,
                                            const std::vector<ClientRoundResult>& results,
                                            const std::vector<std::size_t>& selected);

// Streaming collection: bounds the number of client updates held in memory
// at any instant to the collect quota, without changing what gets
// aggregated.
//
// Workers call offer(i) the moment slot i's result lands. The quorum keeps
// the quota entries that are smallest under select_earliest's strict total
// order (arrival_time, then client_id) among eligible results — exactly
// the set the main thread's candidate filter + select_earliest will pick —
// and immediately frees the update payload (applied_update and eager layer
// tensors) of everything else: ineligible results (failed / non-finite
// arrival / past the upload timeout) and entries evicted when a smaller
// arrival displaces them. Bookkeeping fields (arrival times, byte counts,
// eager metadata) are left intact, so records, reports and metrics are
// byte-identical with streaming on or off.
class StreamingQuorum {
 public:
  // `results` must stay alive and keep its size for the quorum's lifetime;
  // slots may be written concurrently but each slot only before its offer.
  StreamingQuorum(std::vector<ClientRoundResult>* results, std::size_t quota,
                  double timeout_cut);

  // Thread-safe. Must be called exactly once per completed slot.
  void offer(std::size_t index);

 private:
  bool eligible(const ClientRoundResult& r) const;
  static void discard(ClientRoundResult& r);

  std::vector<ClientRoundResult>* results_;
  std::size_t quota_;
  double timeout_cut_;
  util::Mutex mutex_;
  // Max-heap of retained slot indices, ordered by (arrival_time, client_id)
  // descending at the root; size <= quota_.
  std::vector<std::size_t> heap_ FEDCA_GUARDED_BY(mutex_);
};

}  // namespace fedca::fl
