// FedAvg-style update aggregation with partial collection.
//
// The server applies the weighted mean of collected client updates to the
// global model. Following the paper's setup (Sec. 5.1), the server waits
// only for the earliest `collect_fraction` (90 %) of participant updates;
// later arrivals are dropped for that round.
#pragma once

#include <cstddef>
#include <vector>

#include "fl/types.hpp"
#include "nn/state.hpp"

namespace fedca::fl {

// Indices of the earliest ceil(fraction * n) results by arrival time
// (ties broken by client id for determinism). fraction is clamped to
// (0, 1]; n == 0 yields empty.
std::vector<std::size_t> select_earliest(const std::vector<ClientRoundResult>& results,
                                         double fraction);

// Fault-aware variant: the quota is still ceil(fraction * quota_base) —
// the *planned* participant count — but only `candidates` (survivors of
// fault filtering) are eligible, so the selection shrinks further when
// fewer than the quota survive. With candidates covering all results and
// quota_base == results.size() this reduces exactly to the overload above.
std::vector<std::size_t> select_earliest(const std::vector<ClientRoundResult>& results,
                                         const std::vector<std::size_t>& candidates,
                                         std::size_t quota_base, double fraction);

// Weighted mean of the selected updates, added in place to `global`.
// Weights are each client's `weight` (dataset size), normalized over the
// selected subset. Returns the normalized weight per selected entry
// (parallel to `selected`; sums to 1). Throws if `selected` is empty or
// layouts mismatch.
std::vector<double> apply_aggregated_update(nn::ModelState& global,
                                            const std::vector<ClientRoundResult>& results,
                                            const std::vector<std::size_t>& selected);

}  // namespace fedca::fl
