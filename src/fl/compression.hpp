// Update compression: quantization and sparsification.
//
// Sec. 2.2 of the paper lists the classical communication optimizations —
// QSGD-style quantization (fewer bits per element) and top-k
// sparsification (fewer elements) — and Sec. 6 notes they are orthogonal
// to FedCA. This module implements both so the ablation bench can verify
// that orthogonality: a compressor plugs into the round engine and
// transforms each transmitted layer update, changing (a) the bytes on the
// wire and (b) the values the server applies (compression is lossy).
//
// Compressors simulate the codec: compress() rewrites the tensor to its
// decompressed (post-codec) values and returns the wire size in bytes.
#pragma once

#include <memory>
#include <string>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace fedca::fl {

class UpdateCompressor {
 public:
  virtual ~UpdateCompressor() = default;
  virtual std::string name() const = 0;
  // Applies the lossy codec to `layer_update` in place and returns the
  // number of bytes this layer would occupy on the wire.
  // `bytes_per_param` is the uncompressed per-scalar wire cost (4 at
  // native scale; larger under paper-scale byte accounting).
  virtual double compress(tensor::Tensor& layer_update, double bytes_per_param) = 0;
};

// No-op codec: float32 on the wire.
class IdentityCompressor : public UpdateCompressor {
 public:
  std::string name() const override { return "identity"; }
  double compress(tensor::Tensor& layer_update, double bytes_per_param) override;
};

// QSGD (Alistarh et al., NeurIPS'17): stochastic uniform quantization to
// `levels` magnitude levels plus a sign and one float norm per layer.
// Unbiased: E[decode(encode(x))] = x.
class QsgdQuantizer : public UpdateCompressor {
 public:
  // levels >= 1 quantization levels; rng drives the stochastic rounding.
  QsgdQuantizer(std::size_t levels, util::Rng rng);
  std::string name() const override;
  double compress(tensor::Tensor& layer_update, double bytes_per_param) override;

  // Wire bits per element for this level count (sign + level index).
  double bits_per_element() const;

 private:
  std::size_t levels_;
  util::Rng rng_;
};

// Top-k magnitude sparsification (Gaia/APF lineage): keep the largest
// `fraction` of entries per layer (at least one), zero the rest. Wire
// cost: one index + one value per kept entry.
class TopKSparsifier : public UpdateCompressor {
 public:
  explicit TopKSparsifier(double fraction);
  std::string name() const override;
  double compress(tensor::Tensor& layer_update, double bytes_per_param) override;

 private:
  double fraction_;
};

// Named constructor used by the scheme factory: "none" | "qsgd" | "topk".
std::unique_ptr<UpdateCompressor> make_compressor(const std::string& kind,
                                                  std::size_t qsgd_levels,
                                                  double topk_fraction,
                                                  util::Rng rng);

}  // namespace fedca::fl
