// Update compression: quantization and sparsification.
//
// Sec. 2.2 of the paper lists the classical communication optimizations —
// QSGD-style quantization (fewer bits per element) and top-k
// sparsification (fewer elements) — and Sec. 6 notes they are orthogonal
// to FedCA. This module implements both so the ablation bench can verify
// that orthogonality: a compressor plugs into the round engine and
// transforms each transmitted layer update, changing (a) the bytes on the
// wire and (b) the values the server applies (compression is lossy).
//
// Compressors simulate the codec: compress() rewrites the tensor to its
// decompressed (post-codec) values and returns the wire size in bytes.
#pragma once

#include <memory>
#include <string>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace fedca::fl {

class UpdateCompressor {
 public:
  virtual ~UpdateCompressor() = default;
  virtual std::string name() const = 0;
  // Applies the lossy codec to `layer_update` in place and returns the
  // number of bytes this layer would occupy on the wire.
  // `bytes_per_param` is the uncompressed per-scalar wire cost (4 at
  // native scale; larger under paper-scale byte accounting).
  virtual double compress(tensor::Tensor& layer_update, double bytes_per_param) = 0;
};

// No-op codec: float32 on the wire.
class IdentityCompressor : public UpdateCompressor {
 public:
  std::string name() const override { return "identity"; }
  double compress(tensor::Tensor& layer_update, double bytes_per_param) override;
};

// QSGD (Alistarh et al., NeurIPS'17): stochastic uniform quantization to
// `levels` magnitude levels plus a sign and one float norm per layer.
// Unbiased: E[decode(encode(x))] = x.
class QsgdQuantizer : public UpdateCompressor {
 public:
  // levels >= 1 quantization levels; rng drives the stochastic rounding.
  QsgdQuantizer(std::size_t levels, util::Rng rng);
  std::string name() const override;
  double compress(tensor::Tensor& layer_update, double bytes_per_param) override;

  // Wire bits per element for this level count (sign + level index).
  double bits_per_element() const;

 private:
  std::size_t levels_;
  util::Rng rng_;
};

// Top-k magnitude sparsification (Gaia/APF lineage): keep the largest
// `fraction` of entries per layer (at least one), zero the rest. Wire
// cost: one index + one value per kept entry.
class TopKSparsifier : public UpdateCompressor {
 public:
  explicit TopKSparsifier(double fraction);
  std::string name() const override;
  double compress(tensor::Tensor& layer_update, double bytes_per_param) override;

 private:
  double fraction_;
};

// Deterministic int8 affine quantizer (per-layer scale + zero-point,
// zero exactly representable so untouched entries survive the round trip).
// Unlike QSGD this codec is RNG-free: nearest-even rounding in every SIMD
// tier, so the decompressed values are bit-identical across tiers and
// worker counts. Used standalone via make_compressor("int8") and as the
// eager wire format (EagerWire::kInt8 below).
class Int8Quantizer : public UpdateCompressor {
 public:
  std::string name() const override { return "int8"; }
  double compress(tensor::Tensor& layer_update, double bytes_per_param) override;

  // Wire bits per element: one int8 code.
  static double bits_per_element() { return 8.0; }
  // Per-layer wire header: float32 scale + int32 zero-point.
  static double header_bytes() { return 8.0; }
};

// Wire format of eager layer transmissions (Sec. 4.3 overlap path).
//   kFp32: eager layers ride the scheme's configured codec (or raw float32
//          when the scheme has none) — the historical behavior.
//   kInt8: eager layers are int8-quantized (Int8Quantizer); the residual is
//          corrected by the existing error-feedback retransmission path,
//          which still uses the full-precision final upload.
enum class EagerWire { kFp32, kInt8 };

// "fp32" | "int8"; throws std::invalid_argument on anything else.
EagerWire parse_eager_wire(const std::string& name);
const char* eager_wire_name(EagerWire wire);

// Named constructor used by the scheme factory:
// "none" | "qsgd" | "topk" | "int8".
std::unique_ptr<UpdateCompressor> make_compressor(const std::string& kind,
                                                  std::size_t qsgd_levels,
                                                  double topk_fraction,
                                                  util::Rng rng);

}  // namespace fedca::fl
