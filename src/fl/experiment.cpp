#include "fl/experiment.hpp"

#include <algorithm>
#include <numeric>
#include <map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/pool.hpp"
#include "util/logging.hpp"

namespace fedca::fl {

std::vector<double> ExperimentResult::early_stop_iterations() const {
  std::vector<double> out;
  for (const RoundSummary& round : rounds) {
    for (const ClientRoundSummary& c : round.clients) {
      if (c.early_stopped) out.push_back(static_cast<double>(c.iterations_run));
    }
  }
  return out;
}

std::vector<double> ExperimentResult::eager_iterations(bool effective_with_retrans) const {
  std::vector<double> out;
  for (const RoundSummary& round : rounds) {
    for (const ClientRoundSummary& c : round.clients) {
      for (const auto& e : c.eager) {
        if (effective_with_retrans && e.retransmitted) {
          out.push_back(static_cast<double>(c.iterations_run));
        } else {
          out.push_back(static_cast<double>(e.iteration));
        }
      }
    }
  }
  return out;
}

ExperimentSetup make_setup(const ExperimentOptions& options, Scheme& scheme) {
  tensor::BufferPool::configure_from_option(options.tensor_pool);
  util::Rng root(options.seed);
  util::Rng model_rng = root.fork(1);
  util::Rng data_rng = root.fork(2);
  util::Rng partition_rng = root.fork(3);
  util::Rng cluster_rng = root.fork(4);
  util::Rng loader_rng = root.fork(5);

  ExperimentSetup setup;
  setup.model = std::make_unique<nn::Classifier>(
      [&] { return nn::build_model(options.model, model_rng); }());

  // One task fixes the class structure; train and test sets are disjoint
  // draws from it.
  data::SyntheticTask task(options.model, options.data_spec, data_rng);
  util::Rng train_rng = data_rng.fork(10);
  util::Rng test_rng = data_rng.fork(11);
  data::Dataset full_train = task.sample(options.train_samples, train_rng);
  setup.test_set = task.sample(options.test_samples, test_rng);

  data::PartitionOptions part;
  part.num_clients = options.shard_pool > 0
                         ? std::min(options.shard_pool, options.num_clients)
                         : options.num_clients;
  part.num_classes = options.data_spec.num_classes;
  part.alpha = options.dirichlet_alpha;
  part.min_examples_per_client = std::max<std::size_t>(2, options.batch_size / 2);
  setup.shards = data::dirichlet_partition(full_train, part, partition_rng);

  sim::ClusterOptions cluster_options = options.cluster;
  cluster_options.num_clients = options.num_clients;
  setup.cluster = std::make_unique<sim::Cluster>(cluster_options, cluster_rng);
  setup.faults = sim::FaultInjector::from_options(options.faults, options.num_clients);
  if (setup.faults != nullptr) setup.cluster->install_faults(setup.faults);

  RoundEngineOptions engine_options;
  engine_options.local_iterations = options.local_iterations;
  engine_options.batch_size = options.batch_size;
  engine_options.optimizer = options.optimizer;
  engine_options.collect_fraction = options.collect_fraction;
  engine_options.participation_fraction = options.participation_fraction;
  engine_options.upload_timeout = options.upload_timeout;
  engine_options.eager_wire = options.eager_wire;
  engine_options.worker_threads = options.worker_threads;
  setup.engine = std::make_unique<RoundEngine>(setup.model.get(), setup.cluster.get(),
                                               setup.shards, &scheme, engine_options,
                                               loader_rng);
  return setup;
}

nn::Classifier::EvalResult evaluate_global(ExperimentSetup& setup) {
  setup.engine->load_global_into_model();
  const data::Batch test = setup.test_set.as_batch();
  return setup.model->evaluate(test.inputs, test.labels);
}

namespace {

RoundSummary summarize(const RoundRecord& record) {
  RoundSummary summary;
  summary.round_index = record.round_index;
  summary.start_time = record.start_time;
  summary.end_time = record.end_time;
  summary.deadline = record.deadline;
  // Ordered map, not unordered: this is an output-affecting path (the
  // summaries land in result tables), and the lint_fedca unordered-iter
  // rule bans hash containers here — lookup-only today is one range-for
  // away from hash-order output tomorrow. Size is O(participants), so the
  // tree map costs nothing measurable.
  std::map<std::size_t, double> collected;
  for (std::size_t k = 0; k < record.collected.size(); ++k) {
    collected.emplace(record.collected[k],
                      k < record.collected_weights.size()
                          ? record.collected_weights[k]
                          : 0.0);
  }
  summary.clients.reserve(record.clients.size());
  for (std::size_t i = 0; i < record.clients.size(); ++i) {
    const ClientRoundResult& r = record.clients[i];
    ClientRoundSummary c;
    c.client_id = r.client_id;
    c.iterations_run = r.iterations_run;
    c.planned_iterations = r.planned_iterations;
    c.early_stopped = r.early_stopped;
    c.arrival_time = r.arrival_time;
    c.compute_seconds = r.compute_seconds;
    c.bytes_sent = r.bytes_sent;
    c.eager_bytes = r.eager_bytes;
    c.failed = r.failed;
    const auto it = collected.find(i);
    c.collected = it != collected.end();
    c.collected_weight = c.collected ? it->second : 0.0;
    c.eager.reserve(r.eager.size());
    for (const EagerRecord& e : r.eager) {
      c.eager.push_back({e.layer, e.iteration, e.retransmitted});
    }
    summary.clients.push_back(std::move(c));
  }
  return summary;
}

}  // namespace

ExperimentResult run_experiment(const ExperimentOptions& options, Scheme& scheme) {
  // Arm tracing/metrics before any round runs so the first round's spans
  // are captured; flush_paths remembers where to write at the end.
  const auto flush_paths = obs::configure(options.trace_path, options.metrics_path,
                                          options.report_path);
  ExperimentSetup setup = make_setup(options, scheme);
  ExperimentResult result;
  result.scheme_name = scheme.name();
  result.model_name = setup.model->info().name;

  std::vector<double> recent_acc;
  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    RoundRecord record = setup.engine->run_round();
    result.rounds.push_back(summarize(record));

    if (round % std::max<std::size_t>(1, options.eval_every) == 0 ||
        round + 1 == options.max_rounds) {
      const nn::Classifier::EvalResult eval = evaluate_global(setup);
      EvalPoint point;
      point.round_index = record.round_index;
      point.virtual_time = record.end_time;
      point.accuracy = eval.accuracy;
      point.loss = eval.loss;
      result.curve.push_back(point);
      result.final_accuracy = eval.accuracy;

      recent_acc.push_back(eval.accuracy);
      if (recent_acc.size() > options.accuracy_smoothing) {
        recent_acc.erase(recent_acc.begin());
      }
      const double smoothed =
          std::accumulate(recent_acc.begin(), recent_acc.end(), 0.0) /
          static_cast<double>(recent_acc.size());
      FEDCA_LOG_INFO("experiment")
          << scheme.name() << " round " << record.round_index << " t="
          << record.end_time << " acc=" << eval.accuracy << " smoothed=" << smoothed;
      if (options.target_accuracy > 0.0 && !result.reached_target &&
          smoothed >= options.target_accuracy) {
        result.reached_target = true;
        result.time_to_target = record.end_time;
        result.rounds_to_target = record.round_index + 1;
        break;
      }
    }
  }

  result.total_time = setup.engine->now();
  if (!result.rounds.empty()) {
    double sum = 0.0;
    for (const RoundSummary& r : result.rounds) sum += r.duration();
    result.mean_round_seconds = sum / static_cast<double>(result.rounds.size());
  }
  FEDCA_MGAUGE("experiment.final_accuracy", result.final_accuracy);
  FEDCA_MGAUGE("experiment.total_virtual_seconds", result.total_time);
  FEDCA_MGAUGE("experiment.rounds", static_cast<double>(result.rounds.size()));
  obs::flush_outputs(flush_paths.second);
  return result;
}

}  // namespace fedca::fl
