// The FL round engine: real local SGD interleaved with simulated time.
//
// One round, exactly as in FedAvg/Sec. 2.1 of the paper, with FedCA's
// client-autonomy hooks threaded through:
//
//   1. The server announces the round plan (deadline T_R, per-client
//      iteration budgets) — Scheme::plan_round.
//   2. Every participant downloads the global model over its rate-limited
//      downlink (virtual transfer time).
//   3. The client trains locally. Each iteration runs *actual* SGD on the
//      client's non-IID shard; its virtual duration comes from the
//      device's dynamic speed timeline. After every iteration the client's
//      policy may (a) eagerly transmit chosen layers — the engine
//      snapshots the current per-layer update and occupies the uplink,
//      overlapping the transfer with subsequent compute — or (b) stop.
//   4. At halt the policy selects retransmissions (error feedback); the
//      final upload carries all never-eagerly-sent layers plus the
//      retransmitted ones, and the server-side update substitutes eager
//      values for layers that were eagerly sent and not retransmitted.
//   5. The server aggregates the earliest `collect_fraction` of arrivals
//      (weighted FedAvg) and the round ends at that point in virtual time.
//
// Training is bit-deterministic in the experiment seed; virtual time never
// depends on host wall-clock.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "data/dataset.hpp"
#include "data/loader.hpp"
#include "fl/aggregation.hpp"
#include "fl/scheme.hpp"
#include "fl/types.hpp"
#include "nn/models.hpp"
#include "sim/cluster.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace fedca::fl {

// Whether run_round frees non-quorum update payloads as results stream in
// (see StreamingQuorum). kAuto turns streaming on exactly when the cluster
// is compact: legacy single-process experiments (and tests that inspect
// per-client applied updates after the round) keep every payload, scale
// runs hold at most quota + in-flight updates live.
enum class StreamingMode { kAuto, kOn, kOff };

struct RoundEngineOptions {
  std::size_t local_iterations = 125;  // K
  std::size_t batch_size = 50;
  nn::SgdOptions optimizer;            // local SGD settings
  double collect_fraction = 0.9;       // server waits for this share
  double upload_header_bytes = 512.0;  // control framing per upload
  // Fraction of clients selected to participate each round (1.0 = all,
  // the paper's setting). Selection is uniform without replacement from
  // the engine's RNG stream.
  double participation_fraction = 1.0;
  // Round-relative cut-off for uploads: arrivals later than
  // round_start + upload_timeout are excluded from aggregation (the
  // survivors are re-weighted to sum to 1). kNoDeadline disables the
  // cut-off; the default keeps the fault-free behavior bit-identical.
  double upload_timeout = kNoDeadline;
  // Wire format for eager layer transmissions. kInt8 sends each eager
  // layer as int8 codes (per-layer scale + zero-point, ~4x fewer bytes);
  // the quantization residual is corrected by the ordinary error-feedback
  // retransmission path, whose final upload stays full-precision. kFp32
  // keeps the historical behavior (the scheme's codec, or raw float32).
  EagerWire eager_wire = EagerWire::kFp32;
  // Worker threads for concurrent client training: 0 resolves through the
  // FEDCA_THREADS environment variable (falling back to hardware
  // concurrency), 1 forces serial execution. Results are bit-identical for
  // every worker count: RNG streams are per-client, results land in
  // pre-sized slots, and aggregation runs in participant order on the main
  // thread. Requires the model to be cloneable (Module::clone); otherwise
  // the engine silently trains serially on the shared instance.
  std::size_t worker_threads = 0;
  // Streaming aggregation memory bound (payloads only; never changes the
  // aggregate). See StreamingMode.
  StreamingMode streaming = StreamingMode::kAuto;
};

class RoundEngine {
 public:
  // `model` is the shared training replica (global weights are kept in the
  // engine and loaded per client); `cluster` provides virtual devices;
  // `shards` are the per-client datasets (size must equal cluster size).
  RoundEngine(nn::Classifier* model, sim::Cluster* cluster,
              std::vector<data::Dataset> shards, Scheme* scheme,
              RoundEngineOptions options, util::Rng rng);

  // Runs one full round, advances the virtual clock, applies aggregation
  // to the global state, and reports what happened.
  RoundRecord run_round();

  double now() const { return clock_; }
  std::size_t rounds_completed() const { return round_index_; }
  const nn::ModelState& global_state() const { return global_; }
  nn::Classifier& model() { return *model_; }
  const RoundEngineOptions& options() const { return options_; }
  // Loads the current global weights into the shared model replica (used
  // before evaluation).
  void load_global_into_model();
  // Bytes of live per-client loader state (persistent loaders in legacy
  // mode, compact cursors in registry mode) — scale bench accounting.
  std::size_t live_loader_bytes() const;

 private:
  // Trains one client on `model` (the shared instance on the serial path, a
  // private replica on the parallel path). Sets *trained when at least one
  // SGD step ran — the caller uses it to decide whose batch-norm buffers
  // survive the round.
  ClientRoundResult run_client(std::size_t client_id, const RoundInfo& info,
                               nn::Classifier& model, bool* trained);
  // Pops a free replica (cloning a new one if the pool is empty); returns
  // nullptr when the model is not cloneable.
  std::unique_ptr<nn::Classifier> acquire_replica();
  void release_replica(std::unique_ptr<nn::Classifier> replica);
  // The pool used for dispatch: the process-shared pool when it is large
  // enough, otherwise a lazily-created engine-owned pool of `workers`
  // threads (so explicit worker counts above the shared pool's size still
  // exercise real concurrency).
  util::ThreadPool& dispatch_pool(std::size_t workers);
  // Lazily reserves trace pids (server + one per client) and names the
  // processes; no-op while the trace collector is disarmed.
  void register_trace_processes();
  std::uint32_t server_pid() const { return trace_pid_base_; }
  std::uint32_t client_pid(std::size_t client_id) const {
    return trace_pid_base_ + 1 + static_cast<std::uint32_t>(client_id);
  }

  nn::Classifier* model_;
  sim::Cluster* cluster_;
  std::vector<data::Dataset> shards_;
  Scheme* scheme_;
  RoundEngineOptions options_;
  // Legacy clusters keep one persistent loader per client. Compact clusters
  // defer loaders entirely: run_client builds a throwaway loader from
  // loader_rng_'s per-client fork (forks are pure, so the stream is
  // re-derivable at any time) and loader_cursors_ carries each client's
  // 16-byte (reshuffle epoch, position) state between leases — bit-identical
  // batches at O(cohort) instead of O(clients) loader memory.
  std::vector<data::BatchLoader> loaders_;
  util::Rng loader_rng_;
  std::vector<data::BatchLoader::Cursor> loader_cursors_;
  nn::ModelState global_;
  util::Rng selection_rng_;
  double clock_ = 0.0;
  std::size_t round_index_ = 0;
  std::uint32_t trace_pid_base_ = 0;
  bool trace_registered_ = false;
  // Per-client flag so a permanent crash is announced (instant + counter)
  // exactly once, the first round it takes effect.
  std::vector<char> crash_reported_;
  // Replica free-list for parallel client training. `cloneable_` caches the
  // first clone() attempt's verdict.
  util::Mutex replica_mutex_;
  std::vector<std::unique_ptr<nn::Classifier>> replicas_ FEDCA_GUARDED_BY(replica_mutex_);
  bool clone_checked_ = false;
  bool cloneable_ = false;
  std::unique_ptr<util::ThreadPool> own_pool_;
};

}  // namespace fedca::fl
