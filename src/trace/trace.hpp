// Synthetic device traces: heterogeneity and dynamicity.
//
// The paper emulates system conditions on EC2 (Sec. 5.1):
//   * Heterogeneity — clients' average speeds mirror the FedScale trace's
//     device-speed ratios. The real trace ships with FedScale; here we
//     synthesize speed factors from a lognormal whose dispersion matches
//     the mobile-device compute spread FedScale reports (fastest/slowest
//     well over an order of magnitude apart).
//   * Dynamicity — each client toggles between a fast mode and a slow
//     mode; durations are Gamma(2,40) / Gamma(2,6) seconds respectively,
//     and each slow period's slowdown ratio is drawn from U(1,5).
//   * Bandwidth — every client uplink/downlink is 13.7 Mbps (FedScale's
//     average), the server link 10 Gbps.
//
// SpeedTimeline turns this stochastic process into a deterministic
// piecewise-constant function of virtual time, with exact integration of
// "how long does W unit-speed-seconds of work take starting at time t" —
// the primitive the round engine uses to schedule per-iteration compute.
#pragma once

#include <vector>

#include "util/rng.hpp"

namespace fedca::trace {

// Static (per-experiment) characteristics of one device.
struct DeviceProfile {
  // Relative average compute speed, 1.0 = median device; iteration time =
  // nominal_iteration_seconds / effective speed.
  double base_speed = 1.0;
  // Client link bandwidth in megabits per second (both directions).
  double bandwidth_mbps = 13.7;
};

struct HeterogeneityOptions {
  // Lognormal sigma of the speed factor (mu fixed so the median is 1.0).
  double speed_sigma = 0.6;
  double min_speed = 0.15;
  double max_speed = 6.0;
  double bandwidth_mbps = 13.7;
};

// One profile per client, deterministic in `rng`.
std::vector<DeviceProfile> synthesize_profiles(std::size_t num_clients,
                                               const HeterogeneityOptions& options,
                                               util::Rng& rng);

struct DynamicityOptions {
  bool enabled = true;
  // Gamma(shape, scale) durations in seconds (paper: Γ(2,40) fast, Γ(2,6) slow).
  double fast_shape = 2.0;
  double fast_scale = 40.0;
  double slow_shape = 2.0;
  double slow_scale = 6.0;
  // Slow-mode slowdown ratio ~ U(lo, hi) (paper: U(1,5)).
  double slowdown_lo = 1.0;
  double slowdown_hi = 5.0;
};

// Piecewise-constant effective speed of one client over virtual time.
// Segments are generated lazily and cached, so queries may move forward
// arbitrarily far; queries never need to be monotone.
class SpeedTimeline {
 public:
  SpeedTimeline(double base_speed, const DynamicityOptions& options, util::Rng rng);

  // Re-targets this timeline at another client's stream, reusing the
  // segment vectors' capacity (pooled-replica path): the result is
  // bit-identical to a freshly constructed SpeedTimeline(base_speed,
  // original options, rng).
  void rebind(double base_speed, util::Rng rng);

  double base_speed() const { return base_speed_; }

  // Effective speed at virtual time t (>= 0).
  double speed_at(double t);

  // Virtual time at which `work` unit-speed-seconds of compute finish when
  // started at `start`. Exact integration across mode boundaries;
  // work == 0 returns start.
  double finish_time(double start, double work);

  // Average effective speed over [t0, t1] (for diagnostics/tests).
  double average_speed(double t0, double t1);

  // Cached segment capacity (live-memory accounting: segments accumulate
  // for as long as a persistent timeline keeps being queried).
  std::size_t segment_capacity() const { return boundaries_.capacity(); }

 private:
  void extend_until(double t);

  double base_speed_;
  DynamicityOptions options_;
  util::Rng rng_;
  // boundaries_[i] is the start of segment i; speeds_[i] its effective
  // speed; horizon_ is the end of the last generated segment.
  std::vector<double> boundaries_;
  std::vector<double> speeds_;
  double horizon_ = 0.0;
  bool next_is_slow_ = false;
};

}  // namespace fedca::trace
