#include "trace/trace.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace fedca::trace {

std::vector<DeviceProfile> synthesize_profiles(std::size_t num_clients,
                                               const HeterogeneityOptions& options,
                                               util::Rng& rng) {
  if (options.min_speed <= 0.0 || options.max_speed < options.min_speed) {
    throw std::invalid_argument("synthesize_profiles: bad speed bounds");
  }
  std::vector<DeviceProfile> profiles;
  profiles.reserve(num_clients);
  for (std::size_t i = 0; i < num_clients; ++i) {
    DeviceProfile p;
    // mu = 0 puts the lognormal median at exactly 1.0 (the "median
    // device"); sigma controls the FedScale-like spread.
    p.base_speed = std::clamp(rng.lognormal(0.0, options.speed_sigma),
                              options.min_speed, options.max_speed);
    p.bandwidth_mbps = options.bandwidth_mbps;
    profiles.push_back(p);
  }
  return profiles;
}

SpeedTimeline::SpeedTimeline(double base_speed, const DynamicityOptions& options,
                             util::Rng rng)
    : base_speed_(base_speed), options_(options), rng_(rng) {
  if (base_speed_ <= 0.0) {
    throw std::invalid_argument("SpeedTimeline: base_speed must be > 0");
  }
  // Randomize the initial mode so clients are not phase-aligned.
  next_is_slow_ = rng_.uniform() < 0.5;
  if (!options_.enabled) {
    boundaries_.push_back(0.0);
    speeds_.push_back(base_speed_);
    horizon_ = std::numeric_limits<double>::infinity();
    return;
  }
  extend_until(1.0);
}

void SpeedTimeline::rebind(double base_speed, util::Rng rng) {
  if (base_speed <= 0.0) {
    throw std::invalid_argument("SpeedTimeline: base_speed must be > 0");
  }
  base_speed_ = base_speed;
  rng_ = rng;
  boundaries_.clear();
  speeds_.clear();
  horizon_ = 0.0;
  // Mirror the constructor draw-for-draw so the regenerated segment
  // sequence matches a persistent timeline built from the same fork.
  next_is_slow_ = rng_.uniform() < 0.5;
  if (!options_.enabled) {
    boundaries_.push_back(0.0);
    speeds_.push_back(base_speed_);
    horizon_ = std::numeric_limits<double>::infinity();
    return;
  }
  extend_until(1.0);
}

void SpeedTimeline::extend_until(double t) {
  if (!options_.enabled) return;
  while (horizon_ <= t) {
    const bool slow = next_is_slow_;
    next_is_slow_ = !next_is_slow_;
    const double duration = slow ? rng_.gamma(options_.slow_shape, options_.slow_scale)
                                 : rng_.gamma(options_.fast_shape, options_.fast_scale);
    const double slowdown =
        slow ? rng_.uniform(options_.slowdown_lo, options_.slowdown_hi) : 1.0;
    boundaries_.push_back(horizon_);
    speeds_.push_back(base_speed_ / slowdown);
    horizon_ += std::max(duration, 1e-6);
  }
}

double SpeedTimeline::speed_at(double t) {
  if (t < 0.0) throw std::invalid_argument("SpeedTimeline::speed_at: negative time");
  if (!options_.enabled) return base_speed_;
  extend_until(t);
  // Last boundary <= t.
  const auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), t);
  const std::size_t idx = static_cast<std::size_t>(it - boundaries_.begin()) - 1;
  return speeds_[idx];
}

double SpeedTimeline::finish_time(double start, double work) {
  if (start < 0.0 || work < 0.0) {
    throw std::invalid_argument("SpeedTimeline::finish_time: negative input");
  }
  if (work == 0.0) return start;
  if (!options_.enabled) return start + work / base_speed_;

  double t = start;
  double remaining = work;
  for (;;) {
    extend_until(t);
    const auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), t);
    const std::size_t idx = static_cast<std::size_t>(it - boundaries_.begin()) - 1;
    const double speed = speeds_[idx];
    const double seg_end = (idx + 1 < boundaries_.size())
                               ? boundaries_[idx + 1]
                               : horizon_;
    const double available = (seg_end - t) * speed;  // work doable in this segment
    if (available >= remaining) return t + remaining / speed;
    remaining -= available;
    t = seg_end;
  }
}

double SpeedTimeline::average_speed(double t0, double t1) {
  if (t1 <= t0) throw std::invalid_argument("SpeedTimeline::average_speed: empty interval");
  if (!options_.enabled) return base_speed_;
  extend_until(t1);
  double work = 0.0;
  double t = t0;
  while (t < t1) {
    const auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), t);
    const std::size_t idx = static_cast<std::size_t>(it - boundaries_.begin()) - 1;
    const double seg_end = (idx + 1 < boundaries_.size())
                               ? std::min(boundaries_[idx + 1], t1)
                               : t1;
    work += (seg_end - t) * speeds_[idx];
    t = seg_end;
  }
  return work / (t1 - t0);
}

}  // namespace fedca::trace
