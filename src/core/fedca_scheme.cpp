#include "core/fedca_scheme.hpp"

#include <cmath>
#include <stdexcept>

namespace fedca::core {

// Variants restrict which mechanisms are PRESENT (Fig. 9's arms); they do
// not override an explicit early-stop opt-out (EarlyStopOptions defaults
// to enabled, which is what all three paper variants use).
FedCaOptions apply_variant(FedCaOptions base, FedCaVariant variant) {
  switch (variant) {
    case FedCaVariant::kV1:
      base.eager.enabled = false;
      break;
    case FedCaVariant::kV2:
      base.eager.enabled = true;
      base.eager.retransmit = false;
      break;
    case FedCaVariant::kV3:
      base.eager.enabled = true;
      base.eager.retransmit = true;
      break;
  }
  return base;
}

FedCaScheme::FedCaScheme(FedCaOptions options, FedCaVariant variant, std::uint64_t seed)
    : options_(apply_variant(options, variant)), variant_(variant), seed_(seed) {}

std::string FedCaScheme::name() const {
  std::string base = "FedCA";
  switch (variant_) {
    case FedCaVariant::kV1: base = "FedCA-v1"; break;
    case FedCaVariant::kV2: base = "FedCA-v2"; break;
    case FedCaVariant::kV3: base = "FedCA"; break;
  }
  if (options_.adaptive_lr.enabled) base += "+lr";
  return base;
}

void FedCaScheme::bind(std::size_t num_clients, std::size_t nominal_iterations) {
  Scheme::bind(num_clients, nominal_iterations);
  util::Rng root(seed_);
  policies_.clear();
  policies_.reserve(num_clients);
  for (std::size_t c = 0; c < num_clients; ++c) {
    policies_.push_back(
        std::make_unique<FedCaClientPolicy>(options_, root.fork(0xCA << 8 | c)));
  }
}

fl::RoundPlan FedCaScheme::plan_round(std::size_t round_index) {
  fl::RoundPlan plan = Scheme::plan_round(round_index);
  plan.deadline = deadline_.estimate();
  return plan;
}

fl::ClientPolicy& FedCaScheme::client_policy(std::size_t client_id) {
  return *policies_.at(client_id);
}

void FedCaScheme::observe_round(const fl::RoundRecord& record) {
  std::vector<double> durations;
  durations.reserve(record.clients.size());
  for (const fl::ClientRoundResult& r : record.clients) {
    // Crashed/dropped clients (fault injection) never delivered; an
    // infinite duration sample would pin T_R at infinity forever.
    if (r.failed || !std::isfinite(r.arrival_time)) continue;
    durations.push_back(r.arrival_time - record.start_time);
  }
  deadline_.observe_round(durations);
}

const FedCaClientPolicy& FedCaScheme::policy(std::size_t client_id) const {
  return *policies_.at(client_id);
}

}  // namespace fedca::core
