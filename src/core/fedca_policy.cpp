#include "core/fedca_policy.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fedca::core {

FedCaClientPolicy::FedCaClientPolicy(FedCaOptions options, util::Rng rng)
    : options_(options), profiler_(options.profiler, rng) {}

void FedCaClientPolicy::on_round_start(const fl::RoundInfo& round,
                                       const nn::ModelState& global) {
  anchor_round_ = profiler_.is_anchor_round(round.round_index);
  lr_decayed_ = false;
  eager_sent_.assign(global.tensors.size(), false);
  if (anchor_round_) profiler_.begin_round(round.round_index, global);
}

fl::IterationDecision FedCaClientPolicy::after_iteration(const fl::IterationView& view) {
  fl::IterationDecision decision;
  if (anchor_round_) {
    // Anchor rounds only observe: record the sampled update, never
    // optimize, so the profiled curve covers the full K iterations.
    // The recording cost is exactly the Sec. 5.5 overhead claim, so it is
    // measured on the wall clock.
    FEDCA_WALL_SPAN("profiler.record_iteration");
    profiler_.record_iteration(*view.model);
    return decision;
  }
  if (!profiler_.has_curves()) return decision;  // pre-first-anchor warm-up

  // Communication optimization first (Eq. 5): a layer that both
  // stabilizes and is about to be early-stopped past should still go out.
  decision.eager_layers = layers_to_transmit(profiler_.layer_curves(), view.iteration,
                                             eager_sent_, options_.eager);
  for (const std::size_t layer : decision.eager_layers) eager_sent_[layer] = true;
  FEDCA_MCOUNT("fedca.eager_layers", static_cast<double>(decision.eager_layers.size()));

  // Computation optimization (Eqs. 2-4). Cost and deadline share the
  // round-start clock base: T_R is announced relative to round start and
  // the estimator's observations (arrival - round start) use the same
  // base, so t_{R,tau} here includes the download like the observations
  // the deadline was fit on.
  const double deadline_rel = (view.round->deadline == fl::kNoDeadline)
                                  ? fl::kNoDeadline
                                  : view.round->deadline - view.round->start_time;
  const double elapsed = view.now - view.round->start_time;
  decision.stop = should_stop_after(profiler_.model_curve(), view.iteration,
                                    view.round->planned_iterations, elapsed,
                                    deadline_rel, options_.early_stop);
  if (decision.stop) {
    FEDCA_MCOUNT("fedca.early_stops", 1.0);
    FEDCA_MHISTO("fedca.stop_iteration", 0.0,
                 static_cast<double>(std::max<std::size_t>(1, view.round->nominal_iterations)),
                 32, static_cast<double>(view.iteration));
    if (obs::TraceCollector::global().enabled()) {
      // Annotate the stop with the Eqs. 2-4 terms that triggered it: the
      // engine attaches them to the emitted early_stop instant.
      const double b = marginal_benefit(profiler_.model_curve(), view.iteration + 1,
                                        view.round->planned_iterations);
      const double c = marginal_cost(elapsed, deadline_rel, options_.early_stop.beta);
      decision.trace_annotations = {{"b", b}, {"c", c}, {"n", b - c}};
    }
  }

  // Future-work extension (Sec. 6): intra-round lr autonomy — decay once
  // per round when the profiled benefit of the next iteration flattens.
  if (options_.adaptive_lr.enabled && !lr_decayed_ && !decision.stop &&
      view.iteration + 1 <= view.round->planned_iterations) {
    const double next_benefit =
        marginal_benefit(profiler_.model_curve(), view.iteration + 1,
                         view.round->planned_iterations);
    if (next_benefit < options_.adaptive_lr.benefit_threshold) {
      decision.lr_scale = options_.adaptive_lr.decay;
      lr_decayed_ = true;
    }
  }
  return decision;
}

std::vector<std::size_t> FedCaClientPolicy::select_retransmissions(
    const nn::ModelState& final_update, const std::vector<fl::EagerRecord>& eager) {
  std::vector<std::size_t> retrans =
      core::select_retransmissions(final_update, eager, options_.eager);
  FEDCA_MCOUNT("fedca.retransmissions", static_cast<double>(retrans.size()));
  return retrans;
}

void FedCaClientPolicy::on_round_end(const fl::RoundInfo& round) {
  if (anchor_round_ && profiler_.recording()) {
    {
      FEDCA_WALL_SPAN("profiler.finish_round");
      profiler_.finish_round();
    }
    FEDCA_MCOUNT("fedca.anchor_rounds", 1.0);
    // Sec. 5.5 accounting, exported live so any run can audit the
    // min(50 %, 100) sampling budget against the ≤ 4 MB claim.
    FEDCA_MGAUGE("fedca.profiler.sampled_params",
                 static_cast<double>(profiler_.sampled_param_count()));
    FEDCA_MGAUGE("fedca.profiler.bytes_per_round",
                 static_cast<double>(profiler_.profiling_bytes(
                     std::max<std::size_t>(1, round.nominal_iterations))));
  }
  anchor_round_ = false;
}

}  // namespace fedca::core
