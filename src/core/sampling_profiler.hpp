// Periodical sampling — FedCA's profiling mechanism (Sec. 4.1).
//
// Naive profiling (snapshot every parameter after every iteration) would
// cost ~14 GB for WRN-28; FedCA instead combines:
//   * Periodical profiling: curves are measured only at *anchor rounds*
//     (one in `period`, default 10 per Sec. 5.1) and reused for the
//     following rounds — curves are similar across consecutive rounds
//     (Fig. 4). Anchor rounds run un-optimized (footnote 3) so the curve
//     is complete and valid.
//   * Intra-layer sampling: within an anchor round, only
//     min(50 %, 100) scalars per layer are recorded — parameters within a
//     layer evolve at a similar pace (Fig. 5).
//
// The profiler yields, per anchor round, one progress curve per layer plus
// a whole-model curve (computed over the concatenated samples); it also
// reports its own memory footprint, reproducing the Sec. 5.5 overhead
// accounting.
#pragma once

#include <cstddef>
#include <vector>

#include "core/progress.hpp"
#include "nn/module.hpp"
#include "nn/state.hpp"
#include "util/rng.hpp"

namespace fedca::core {

struct ProfilerOptions {
  // Profile once per this many rounds (round r is an anchor iff
  // r % period == 0, so round 0 bootstraps the curves).
  std::size_t period = 10;
  // Per-layer sample budget: min(fraction * layer size, cap), >= 1.
  double layer_fraction = 0.5;
  std::size_t layer_cap = 100;
};

class SamplingProfiler {
 public:
  SamplingProfiler(ProfilerOptions options, util::Rng rng);

  const ProfilerOptions& options() const { return options_; }
  bool is_anchor_round(std::size_t round_index) const;
  // True once at least one anchor round completed.
  bool has_curves() const { return !layer_curves_.empty(); }

  // --- anchor-round recording protocol ---
  // begin_round snapshots w_0 (and fixes sampled indices on first use);
  // record_iteration appends the sampled accumulated update after one
  // local iteration; finish_round turns the recordings into curves.
  void begin_round(std::size_t round_index, const nn::ModelState& round_start);
  void record_iteration(nn::Module& model);
  void finish_round();
  bool recording() const { return recording_; }

  // --- profiled knowledge (valid when has_curves()) ---
  const std::vector<ProgressCurve>& layer_curves() const { return layer_curves_; }
  const ProgressCurve& model_curve() const { return model_curve_; }
  // Round index of the most recent completed anchor profile.
  std::size_t anchor_round() const { return anchor_round_; }

  // --- overhead accounting (Sec. 5.5) ---
  // Total sampled scalars across layers (fixed after the first anchor).
  std::size_t sampled_param_count() const;
  // Sampled scalars per layer (empty before the first anchor round).
  std::vector<std::size_t> sampled_per_layer() const {
    std::vector<std::size_t> out;
    out.reserve(indices_.size());
    for (const auto& layer : indices_) out.push_back(layer.size());
    return out;
  }
  // Peak profiling memory for a round of `iterations` local iterations.
  std::size_t profiling_bytes(std::size_t iterations) const;

 private:
  void ensure_indices(const nn::ModelState& layout);

  ProfilerOptions options_;
  util::Rng rng_;
  // Sampled flat indices per layer (chosen once, reused across anchors —
  // consistent sampling makes curves comparable between anchor rounds).
  std::vector<std::vector<std::size_t>> indices_;
  // Recording state.
  bool recording_ = false;
  nn::ModelState round_start_;
  // per layer -> per iteration -> sampled accumulated update
  std::vector<std::vector<std::vector<float>>> recorded_;
  // Profiled knowledge.
  std::vector<ProgressCurve> layer_curves_;
  ProgressCurve model_curve_;
  std::size_t anchor_round_ = 0;
  std::size_t pending_round_ = 0;
};

}  // namespace fedca::core
