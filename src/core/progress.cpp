#include "core/progress.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace fedca::core {

double statistical_progress(std::span<const float> accumulated,
                            std::span<const float> full_round) {
  const double cosine = tensor::cosine_similarity(accumulated, full_round);
  const double magnitude = tensor::magnitude_similarity(accumulated, full_round);
  return cosine * magnitude;
}

ProgressCurve curve_from_snapshots(const std::vector<std::vector<float>>& snapshots) {
  if (snapshots.empty()) return {};
  const std::vector<float>& full = snapshots.back();
  ProgressCurve curve;
  curve.reserve(snapshots.size());
  for (const auto& snapshot : snapshots) {
    if (snapshot.size() != full.size()) {
      throw std::invalid_argument("curve_from_snapshots: snapshot size mismatch");
    }
    curve.push_back(statistical_progress(snapshot, full));
  }
  return curve;
}

double curve_at(const ProgressCurve& curve, std::size_t tau) {
  if (tau == 0 || curve.empty()) return 0.0;
  if (tau > curve.size()) tau = curve.size();
  return curve[tau - 1];
}

double marginal_benefit(const ProgressCurve& curve, std::size_t tau,
                        std::size_t total_iterations) {
  if (tau == 0) throw std::invalid_argument("marginal_benefit: tau is 1-based");
  const double p_tau = curve_at(curve, tau);
  const double p_prev = curve_at(curve, tau - 1);
  const double diff = p_tau - p_prev;
  double lower_bound = 0.0;
  if (tau < total_iterations) {
    lower_bound = (1.0 - p_tau) / static_cast<double>(total_iterations - tau);
  }
  return diff > lower_bound ? diff : lower_bound;
}

}  // namespace fedca::core
