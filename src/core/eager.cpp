#include "core/eager.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace fedca::core {

std::vector<std::size_t> layers_to_transmit(const std::vector<ProgressCurve>& layer_curves,
                                            std::size_t tau,
                                            const std::vector<bool>& sent,
                                            const EagerOptions& options) {
  std::vector<std::size_t> out;
  if (!options.enabled) return out;
  if (sent.size() != layer_curves.size()) {
    throw std::invalid_argument("layers_to_transmit: sent flags size mismatch");
  }
  for (std::size_t layer = 0; layer < layer_curves.size(); ++layer) {
    if (sent[layer]) continue;
    if (curve_at(layer_curves[layer], tau) >= options.stabilize_threshold) {
      out.push_back(layer);
    }
  }
  return out;
}

bool needs_retransmission(const tensor::Tensor& final_layer_update,
                          const tensor::Tensor& eager_value,
                          const EagerOptions& options) {
  if (!options.retransmit) return false;
  const double cosine =
      tensor::cosine_similarity(final_layer_update.data(), eager_value.data());
  return cosine < options.retransmit_threshold;
}

std::vector<std::size_t> select_retransmissions(const nn::ModelState& final_update,
                                                const std::vector<fl::EagerRecord>& eager,
                                                const EagerOptions& options) {
  std::vector<std::size_t> out;
  if (!options.retransmit) return out;
  for (const fl::EagerRecord& record : eager) {
    if (record.layer >= final_update.tensors.size()) {
      throw std::invalid_argument("select_retransmissions: layer index out of range");
    }
    if (needs_retransmission(final_update.tensors[record.layer], record.value, options)) {
      out.push_back(record.layer);
    }
  }
  return out;
}

}  // namespace fedca::core
