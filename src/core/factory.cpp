#include "core/factory.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "core/fedca_scheme.hpp"
#include "fl/fedada.hpp"

namespace fedca::core {

namespace {

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

FedCaOptions fedca_options_from(const util::Config& config) {
  FedCaOptions options;
  options.early_stop.beta = config.get_double("fedca_beta", 0.01);
  options.early_stop.min_iterations =
      static_cast<std::size_t>(config.get_int("fedca_min_iterations", 1));
  options.eager.stabilize_threshold = config.get_double("fedca_te", 0.95);
  options.eager.retransmit_threshold = config.get_double("fedca_tr", 0.6);
  options.profiler.period = static_cast<std::size_t>(config.get_int("fedca_period", 10));
  options.profiler.layer_fraction = config.get_double("fedca_sample_fraction", 0.5);
  options.profiler.layer_cap =
      static_cast<std::size_t>(config.get_int("fedca_sample_cap", 100));
  options.adaptive_lr.benefit_threshold =
      config.get_double("fedca_lr_threshold", 0.01);
  options.adaptive_lr.decay = config.get_double("fedca_lr_decay", 0.5);
  return options;
}

}  // namespace

namespace {

// Wraps `scheme` in a compression decorator if the config asks for one
// (compress=qsgd|topk, compress_levels=, compress_fraction=).
std::unique_ptr<fl::Scheme> maybe_compress(std::unique_ptr<fl::Scheme> scheme,
                                           const util::Config& config,
                                           std::uint64_t seed) {
  const std::string kind = config.get_string("compress", "none");
  if (kind == "none" || kind.empty()) return scheme;
  fl::CompressedScheme::CompressionSpec spec;
  spec.kind = kind;
  spec.qsgd_levels = static_cast<std::size_t>(config.get_int("compress_levels", 128));
  spec.topk_fraction = config.get_double("compress_fraction", 0.05);
  return std::make_unique<fl::CompressedScheme>(std::move(scheme), spec, seed ^ 0xC0DEC);
}

std::unique_ptr<fl::Scheme> make_base_scheme(const std::string& key,
                                             const util::Config& config,
                                             std::uint64_t seed);

}  // namespace

std::unique_ptr<fl::Scheme> make_scheme(const std::string& name,
                                        const util::Config& config, std::uint64_t seed) {
  return maybe_compress(make_base_scheme(to_lower(name), config, seed), config, seed);
}

namespace {

std::unique_ptr<fl::Scheme> make_base_scheme(const std::string& key,
                                             const util::Config& config,
                                             std::uint64_t seed) {
  if (key == "fedavg") return std::make_unique<fl::FedAvgScheme>();
  if (key == "fedprox") {
    return std::make_unique<fl::FedProxScheme>(config.get_double("fedprox_mu", 0.01));
  }
  if (key == "fedada") {
    fl::FedAdaOptions options;
    options.tradeoff = config.get_double("fedada_tradeoff", 0.5);
    options.min_fraction = config.get_double("fedada_min_fraction", 0.2);
    return std::make_unique<fl::FedAdaScheme>(options);
  }
  if (key == "fedca" || key == "fedca_v3") {
    return std::make_unique<FedCaScheme>(fedca_options_from(config), FedCaVariant::kV3,
                                         seed);
  }
  if (key == "fedca_v1") {
    return std::make_unique<FedCaScheme>(fedca_options_from(config), FedCaVariant::kV1,
                                         seed);
  }
  if (key == "fedca_v2") {
    return std::make_unique<FedCaScheme>(fedca_options_from(config), FedCaVariant::kV2,
                                         seed);
  }
  if (key == "fedca_lr") {
    // Sec. 6 future-work extension: full FedCA plus intra-round adaptive
    // local learning rate.
    FedCaOptions options = fedca_options_from(config);
    options.adaptive_lr.enabled = true;
    return std::make_unique<FedCaScheme>(options, FedCaVariant::kV3, seed);
  }
  throw std::invalid_argument("make_scheme: unknown scheme '" + key + "'");
}

}  // namespace

std::vector<std::string> known_scheme_names() {
  return {"fedavg", "fedprox", "fedada", "fedca",
          "fedca_v1", "fedca_v2", "fedca_v3", "fedca_lr"};
}

}  // namespace fedca::core
