// Eager transmission with error feedback (Sec. 4.3, Eqs. 5-6).
//
// A layer whose profiled progress curve crosses the stabilization
// threshold T_e is considered early-converged: its accumulated update will
// barely change for the rest of the round, so the client ships it
// immediately and overlaps the transfer with the remaining computation
// (Fig. 6). Because the trigger uses the *anchor-round* curve, the
// diagnosis can be wrong for the current round; the error-feedback check
// compares the value that was actually sent against the final one and
// retransmits when their cosine similarity falls below T_r.
#pragma once

#include <cstddef>
#include <vector>

#include "core/progress.hpp"
#include "fl/types.hpp"
#include "nn/state.hpp"

namespace fedca::core {

struct EagerOptions {
  bool enabled = true;
  // Stabilization threshold T_e (Eq. 5; paper default 0.95).
  double stabilize_threshold = 0.95;
  // Error-feedback retransmission enabled (FedCA-v3; off reproduces the
  // accuracy-losing FedCA-v2 of the Fig. 9 ablation).
  bool retransmit = true;
  // Retransmission threshold T_r (Eq. 6; paper default 0.6).
  double retransmit_threshold = 0.6;
};

// Eq. 5 — layers whose profiled curve has crossed T_e by iteration `tau`
// and which have not been sent yet. `sent` flags are indexed by layer.
std::vector<std::size_t> layers_to_transmit(const std::vector<ProgressCurve>& layer_curves,
                                            std::size_t tau,
                                            const std::vector<bool>& sent,
                                            const EagerOptions& options);

// Eq. 6 — true when the eagerly-sent value deviates from the final update
// enough to require retransmission:
//   Sim_cos(G_l, G_l^eager) < T_r.
bool needs_retransmission(const tensor::Tensor& final_layer_update,
                          const tensor::Tensor& eager_value,
                          const EagerOptions& options);

// Applies Eq. 6 over a round's eager records against the final update.
std::vector<std::size_t> select_retransmissions(const nn::ModelState& final_update,
                                                const std::vector<fl::EagerRecord>& eager,
                                                const EagerOptions& options);

}  // namespace fedca::core
