// Early-stopping utility function (Sec. 4.2, Eqs. 2-4).
//
// Each local iteration tau of round R is scored:
//   benefit  b_{R,tau} = max(P_{T,tau} - P_{T,tau-1}, (1-P_{T,tau})/(K-tau))
//                        — from the anchor-round curve (Eq. 2, in
//                        progress.hpp),
//   cost     c_{R,tau} = f * t_{R,tau} / T_R,  f = beta if t <= T_R else 1
//                        (Eq. 3),
//   net      n_{R,tau} = b_{R,tau} - c_{R,tau}  (Eq. 4).
// The client stops local training as soon as n turns negative. Before the
// deadline the cost rises gently (beta << 1 discourages premature exits);
// past it the full t/T_R penalty kicks in and stragglers wind down fast.
#pragma once

#include <cstddef>

#include "core/progress.hpp"

namespace fedca::core {

struct EarlyStopOptions {
  bool enabled = true;
  // Marginal-cost ratio before the deadline (beta in Eq. 3; paper default
  // 0.01, sensitivity-swept over {0.1, 0.01, 0.001} in Fig. 10a).
  double beta = 0.01;
  // Never stop before this many local iterations.
  std::size_t min_iterations = 1;
};

// Eq. 3. `elapsed` = t_{R,tau}, local training wall-clock so far;
// `deadline` = T_R (round-relative). An infinite/zero/negative deadline
// yields zero cost — without an announced T_R there is no basis to
// penalize computation (the warm-up rounds behave like FedAvg).
double marginal_cost(double elapsed, double deadline, double beta);

// Eq. 4.
inline double net_benefit(double benefit, double cost) { return benefit - cost; }

// Full early-stop predicate: should the client halt after finishing
// iteration `tau` (i.e. decline to run iteration tau + 1)?
// Evaluates n_{R,tau+1} using the anchor curve for the benefit of the
// *next* iteration and the elapsed time observed so far for the cost.
bool should_stop_after(const ProgressCurve& model_curve, std::size_t tau,
                       std::size_t total_iterations, double elapsed, double deadline,
                       const EarlyStopOptions& options);

}  // namespace fedca::core
