// FedCA scheme: server half + per-client autonomous policies.
//
// The server's only FedCA-specific duties (Sec. 5.1) are to announce the
// FedBalancer-style deadline T_R together with the model at round start
// and to aggregate as usual — every optimization decision is made on the
// clients. The three ablation variants of Fig. 9 are configuration
// presets:
//   v1 — early-stop only;
//   v2 — early-stop + eager transmission, retransmission disabled;
//   v3 — the full mechanism (the default "FedCA").
#pragma once

#include <memory>
#include <string>

#include "core/fedca_policy.hpp"
#include "fl/deadline.hpp"
#include "fl/scheme.hpp"

namespace fedca::core {

enum class FedCaVariant { kV1, kV2, kV3 };

// Preset options per Fig. 9's ablation arms (on top of `base`).
FedCaOptions apply_variant(FedCaOptions base, FedCaVariant variant);

class FedCaScheme : public fl::Scheme {
 public:
  // `seed` decorrelates per-client profiler sampling.
  FedCaScheme(FedCaOptions options, FedCaVariant variant = FedCaVariant::kV3,
              std::uint64_t seed = 1);

  std::string name() const override;
  void bind(std::size_t num_clients, std::size_t nominal_iterations) override;
  fl::RoundPlan plan_round(std::size_t round_index) override;
  fl::ClientPolicy& client_policy(std::size_t client_id) override;
  void observe_round(const fl::RoundRecord& record) override;

  FedCaVariant variant() const { return variant_; }
  const FedCaOptions& options() const { return options_; }
  // Per-client policy access for tests/benches (profiler introspection).
  const FedCaClientPolicy& policy(std::size_t client_id) const;

 private:
  FedCaOptions options_;
  FedCaVariant variant_;
  std::uint64_t seed_;
  fl::DeadlineEstimator deadline_;
  std::vector<std::unique_ptr<FedCaClientPolicy>> policies_;
};

}  // namespace fedca::core
