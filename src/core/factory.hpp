// Scheme factory — the one-stop entry point benches and examples use.
//
// Recognized names (case-insensitive):
//   "fedavg", "fedprox", "fedada",
//   "fedca" (= v3), "fedca_v1", "fedca_v2", "fedca_v3".
// FedCA/FedProx/FedAda hyperparameters are read from `config` with the
// paper's Sec. 5.1 defaults: prox mu 0.01; FedAda trade-off 0.5; profiling
// period 10; beta 0.01; T_e 0.95; T_r 0.6.
#pragma once

#include <memory>
#include <string>

#include "fl/scheme.hpp"
#include "util/config.hpp"

namespace fedca::core {

std::unique_ptr<fl::Scheme> make_scheme(const std::string& name,
                                        const util::Config& config,
                                        std::uint64_t seed = 1);

// Names accepted by make_scheme, for help text and sweep loops.
std::vector<std::string> known_scheme_names();

}  // namespace fedca::core
