// The FedCA client policy — where client autonomy lives.
//
// One instance per client, persistent across rounds. Responsibilities:
//   * run the periodical-sampling profiler during anchor rounds (in which
//     no optimization fires, per footnote 3 of the paper);
//   * between anchors, consult the profiled curves after every local
//     iteration to (a) eagerly transmit stabilized layers (Eq. 5) and
//     (b) early-stop when net benefit turns negative (Eqs. 2-4);
//   * at round end, select retransmissions via error feedback (Eq. 6).
#pragma once

#include "core/eager.hpp"
#include "core/sampling_profiler.hpp"
#include "core/utility.hpp"
#include "fl/scheme.hpp"

namespace fedca::core {

// Intra-round adaptive learning rate — the client-autonomy extension the
// paper sketches as future work (Sec. 6: clients "autonomously adjust
// these hyper-parameters within a training round"). When the profiled
// marginal benefit of the upcoming iteration drops below
// `benefit_threshold`, the client scales its local learning rate by
// `decay` for the rest of the round: once the accumulated update's
// direction has stabilized, smaller steps refine it instead of
// oscillating around the local optimum.
struct AdaptiveLrOptions {
  bool enabled = false;
  double benefit_threshold = 0.01;
  double decay = 0.5;
};

struct FedCaOptions {
  EarlyStopOptions early_stop;
  EagerOptions eager;
  ProfilerOptions profiler;
  AdaptiveLrOptions adaptive_lr;
};

class FedCaClientPolicy : public fl::ClientPolicy {
 public:
  FedCaClientPolicy(FedCaOptions options, util::Rng rng);

  void on_round_start(const fl::RoundInfo& round, const nn::ModelState& global) override;
  fl::IterationDecision after_iteration(const fl::IterationView& view) override;
  std::vector<std::size_t> select_retransmissions(
      const nn::ModelState& final_update,
      const std::vector<fl::EagerRecord>& eager) override;
  void on_round_end(const fl::RoundInfo& round) override;

  const SamplingProfiler& profiler() const { return profiler_; }
  const FedCaOptions& options() const { return options_; }

 private:
  FedCaOptions options_;
  SamplingProfiler profiler_;
  // Per-round scratch.
  bool anchor_round_ = false;
  bool lr_decayed_ = false;
  std::vector<bool> eager_sent_;
};

}  // namespace fedca::core
