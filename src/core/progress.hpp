// Statistical progress — the paper's core metric (Sec. 3.2.1, Eq. 1).
//
//   P_i = Sim_cos(G_i, G_K) * min(||G_i||, ||G_K||) / max(||G_i||, ||G_K||)
//
// where G_i is the accumulated local update after i of K local iterations.
// P_i in [-1, 1] in general, ~[0, 1] along real SGD trajectories, and
// P_K = 1 exactly. The per-iteration statistical contribution is
// P_i - P_{i-1}; Eq. 2's marginal-benefit estimate lower-bounds it to
// survive curve irregularity.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fedca::core {

// Eq. 1 applied to flat vectors (whole model or a single layer).
double statistical_progress(std::span<const float> accumulated,
                            std::span<const float> full_round);

// A profiled curve: value at index i is P_{i+1} (progress after local
// iteration i+1); size() == K. By construction back() == 1 for non-zero
// updates.
using ProgressCurve = std::vector<double>;

// Builds the curve from per-iteration snapshots of the accumulated update
// (snapshots[i] = G_{i+1} as a flat vector). All snapshots must be equal
// length; the last one is G_K.
ProgressCurve curve_from_snapshots(const std::vector<std::vector<float>>& snapshots);

// Eq. 2 — marginal benefit of iteration tau (1-based) in a round of K
// iterations, estimated from the anchor-round curve:
//   b = max(P_tau - P_{tau-1}, (1 - P_tau) / (K - tau))
// P_0 := 0. At tau >= K the lower-bound term is 0 (no remaining
// iterations). Indices beyond the curve clamp to its end.
double marginal_benefit(const ProgressCurve& curve, std::size_t tau, std::size_t total_iterations);

// Progress value P_tau read off a curve (tau 1-based; tau = 0 gives 0;
// beyond-the-end clamps).
double curve_at(const ProgressCurve& curve, std::size_t tau);

}  // namespace fedca::core
