#include "core/utility.hpp"

#include <cmath>
#include <stdexcept>

namespace fedca::core {

double marginal_cost(double elapsed, double deadline, double beta) {
  if (elapsed < 0.0) throw std::invalid_argument("marginal_cost: negative elapsed time");
  if (!(deadline > 0.0) || std::isinf(deadline)) return 0.0;
  const double f = (elapsed <= deadline) ? beta : 1.0;
  return f * elapsed / deadline;
}

bool should_stop_after(const ProgressCurve& model_curve, std::size_t tau,
                       std::size_t total_iterations, double elapsed, double deadline,
                       const EarlyStopOptions& options) {
  if (!options.enabled) return false;
  if (tau < options.min_iterations) return false;
  if (tau >= total_iterations) return false;  // round is over anyway
  if (model_curve.empty()) return false;      // no profiled knowledge yet
  const double benefit = marginal_benefit(model_curve, tau + 1, total_iterations);
  const double cost = marginal_cost(elapsed, deadline, options.beta);
  return net_benefit(benefit, cost) < 0.0;
}

}  // namespace fedca::core
