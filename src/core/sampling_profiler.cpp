#include "core/sampling_profiler.hpp"

#include <algorithm>
#include <stdexcept>

#include "tensor/pool.hpp"

namespace fedca::core {

SamplingProfiler::SamplingProfiler(ProfilerOptions options, util::Rng rng)
    : options_(options), rng_(rng) {
  if (options_.period == 0) {
    throw std::invalid_argument("SamplingProfiler: period must be > 0");
  }
  if (options_.layer_fraction <= 0.0 || options_.layer_fraction > 1.0) {
    throw std::invalid_argument("SamplingProfiler: layer_fraction must be in (0, 1]");
  }
  if (options_.layer_cap == 0) {
    throw std::invalid_argument("SamplingProfiler: layer_cap must be > 0");
  }
}

bool SamplingProfiler::is_anchor_round(std::size_t round_index) const {
  return round_index % options_.period == 0;
}

void SamplingProfiler::ensure_indices(const nn::ModelState& layout) {
  if (!indices_.empty()) return;
  indices_.reserve(layout.tensors.size());
  for (const auto& layer : layout.tensors) {
    const std::size_t n = layer.numel();
    std::size_t k = static_cast<std::size_t>(
        options_.layer_fraction * static_cast<double>(n));
    k = std::min(k, options_.layer_cap);
    k = std::max<std::size_t>(k, std::min<std::size_t>(n, 1));
    indices_.push_back(rng_.sample_without_replacement(n, k));
  }
}

void SamplingProfiler::begin_round(std::size_t round_index,
                                   const nn::ModelState& round_start) {
  if (recording_) {
    throw std::logic_error("SamplingProfiler::begin_round: already recording");
  }
  ensure_indices(round_start);
  recording_ = true;
  pending_round_ = round_index;
  round_start_ = round_start;
  recorded_.assign(round_start.tensors.size(), {});
}

void SamplingProfiler::record_iteration(nn::Module& model) {
  if (!recording_) {
    throw std::logic_error("SamplingProfiler::record_iteration: not recording");
  }
  const std::vector<nn::Parameter*> params = model.parameters();
  if (params.size() != indices_.size()) {
    throw std::logic_error("SamplingProfiler: model layout changed");
  }
  for (std::size_t layer = 0; layer < params.size(); ++layer) {
    // Per-iteration sample panels recycle through the tensor buffer pool
    // (every element is written below before any read).
    std::vector<float> sample = tensor::pool_acquire(indices_[layer].size());
    const nn::Tensor& current = params[layer]->value;
    const nn::Tensor& start = round_start_.tensors[layer];
    std::size_t j = 0;
    for (const std::size_t idx : indices_[layer]) {
      sample[j++] = current[idx] - start[idx];
    }
    recorded_[layer].push_back(std::move(sample));
  }
}

void SamplingProfiler::finish_round() {
  if (!recording_) {
    throw std::logic_error("SamplingProfiler::finish_round: not recording");
  }
  recording_ = false;
  if (recorded_.empty() || recorded_.front().empty()) {
    recorded_.clear();
    return;  // nothing was recorded; keep previous curves
  }
  const std::size_t iterations = recorded_.front().size();

  layer_curves_.clear();
  layer_curves_.reserve(recorded_.size());
  for (const auto& layer_snapshots : recorded_) {
    layer_curves_.push_back(curve_from_snapshots(layer_snapshots));
  }

  // Whole-model curve over the concatenated per-layer samples (pooled
  // scratch: each snapshot is fully written before use).
  std::size_t snap_len = 0;
  for (const auto& layer_snapshots : recorded_) {
    snap_len += layer_snapshots.front().size();
  }
  std::vector<std::vector<float>> model_snapshots(iterations);
  for (std::size_t it = 0; it < iterations; ++it) {
    std::vector<float>& snap = model_snapshots[it];
    snap = tensor::pool_acquire(snap_len);
    std::size_t offset = 0;
    for (const auto& layer_snapshots : recorded_) {
      const std::vector<float>& src = layer_snapshots[it];
      std::copy(src.begin(), src.end(), snap.begin() + offset);
      offset += src.size();
    }
  }
  model_curve_ = curve_from_snapshots(model_snapshots);
  anchor_round_ = pending_round_;
  for (auto& snap : model_snapshots) tensor::pool_release(std::move(snap));
  for (auto& layer_snapshots : recorded_) {
    for (auto& sample : layer_snapshots) tensor::pool_release(std::move(sample));
  }
  recorded_.clear();
  round_start_ = nn::ModelState{};
}

std::size_t SamplingProfiler::sampled_param_count() const {
  std::size_t n = 0;
  for (const auto& layer : indices_) n += layer.size();
  return n;
}

std::size_t SamplingProfiler::profiling_bytes(std::size_t iterations) const {
  return sampled_param_count() * sizeof(float) * iterations;
}

}  // namespace fedca::core
