#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fedca::util {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lower = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lower);
  if (lower + 1 >= samples.size()) return samples.back();
  return samples[lower] * (1.0 - frac) + samples[lower + 1] * frac;
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

std::vector<std::pair<double, double>> EmpiricalCdf::series(double lo, double hi,
                                                            std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (points == 0) return out;
  out.reserve(points);
  if (points == 1) {
    out.emplace_back(lo, at(lo));
    return out;
  }
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, at(x));
  }
  return out;
}

std::vector<std::pair<double, double>> EmpiricalCdf::steps() const {
  std::vector<std::pair<double, double>> out;
  out.reserve(sorted_.size());
  for (std::size_t i = 0; i < sorted_.size(); ++i) {
    if (i + 1 < sorted_.size() && sorted_[i + 1] == sorted_[i]) continue;
    out.emplace_back(sorted_[i],
                     static_cast<double>(i + 1) / static_cast<double>(sorted_.size()));
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo);
  assert(bins > 0);
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<long>(std::floor((x - lo_) / width));
  bin = std::clamp<long>(bin, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_lower(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_upper(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin + 1);
}

}  // namespace fedca::util
