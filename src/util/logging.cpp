#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "util/sync.hpp"

namespace fedca::util {

namespace {

std::atomic<int> g_level{-1};  // -1: not yet initialized from environment.
Mutex g_write_mutex;
std::atomic<LogSink> g_sink{nullptr};

LogLevel level_from_env() {
  const char* env = std::getenv("FEDCA_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  return parse_log_level(env);
}

}  // namespace

LogLevel log_level() {
  int v = g_level.load(std::memory_order_relaxed);
  if (v < 0) {
    const LogLevel from_env = level_from_env();
    int expected = -1;
    g_level.compare_exchange_strong(expected, static_cast<int>(from_env),
                                    std::memory_order_relaxed);
    v = g_level.load(std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(v);
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel parse_log_level(std::string_view name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn" || name == "warning") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off" || name == "none") return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void log_line(LogLevel level, std::string_view component, std::string_view message) {
  if (level < log_level() || level == LogLevel::kOff) return;
  detail::emit_line(level, component, message);
}

void set_log_sink_for_testing(LogSink sink) {
  g_sink.store(sink, std::memory_order_relaxed);
}

namespace detail {

void emit_line(LogLevel level, std::string_view component, std::string_view message) {
  if (const LogSink sink = g_sink.load(std::memory_order_relaxed)) {
    // Never invoke the user sink under g_write_mutex: a sink that logs
    // (e.g. to report its own failure) would re-enter emit_line and
    // deadlock on the non-recursive mutex. The line is already fully
    // formatted, so the sink needs no serialization from us; a sink used
    // from multiple threads must be thread-safe itself.
    sink(level, component, message);
    return;
  }
  MutexLock lock(g_write_mutex);
  std::fprintf(stderr, "[%.*s] %.*s: %.*s\n",
               static_cast<int>(log_level_name(level).size()), log_level_name(level).data(),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace detail

}  // namespace fedca::util
