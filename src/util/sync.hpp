// Annotated synchronization primitives for the thread-safety analysis.
//
// std::mutex carries no capability attributes under libstdc++, so clang's
// -Wthread-safety cannot track it. These thin wrappers add the annotations
// (and nothing else): Mutex wraps std::mutex, MutexLock replaces
// std::lock_guard, and CondVar replaces std::condition_variable with an
// explicit REQUIRES(mutex) wait. Every lock-holding subsystem in src/ uses
// these types so a guarded member touched without its mutex is a compile
// error under -DFEDCA_STATIC_ANALYSIS=ON (clang), while off clang they
// compile to exactly the std:: primitives they wrap.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace fedca::util {

class FEDCA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FEDCA_ACQUIRE() { mu_.lock(); }
  void unlock() FEDCA_RELEASE() { mu_.unlock(); }
  bool try_lock() FEDCA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII scope lock (the std::lock_guard of this layer).
class FEDCA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FEDCA_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() FEDCA_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable bound to Mutex. wait() REQUIRES the mutex: the caller
// holds it on entry and on return, exactly like std::condition_variable —
// but the requirement is now checked at compile time. Predicate re-checks
// stay in the caller (a plain while loop), which keeps guarded-member
// reads inside the annotated scope instead of inside an unannotatable
// lambda.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) FEDCA_REQUIRES(mu) {
    // Adopt the already-held std::mutex for the duration of the wait and
    // release it back to the caller's MutexLock afterwards.
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace fedca::util
