#include "util/config.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>

namespace fedca::util {

namespace {

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

std::string to_upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return s;
}

}  // namespace

Config Config::from_args(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw ConfigError("expected key=value argument, got: " + token);
    }
    cfg.set(token.substr(0, eq), token.substr(eq + 1));
  }
  return cfg;
}

void Config::set(const std::string& key, std::string value) {
  values_[to_lower(key)] = std::move(value);
}

bool Config::contains(const std::string& key) const {
  return values_.contains(to_lower(key));
}

std::string Config::get_string(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(to_lower(key));
  const std::string value = (it == values_.end()) ? fallback : it->second;
  read_[to_lower(key)] = value;
  return value;
}

long Config::get_int(const std::string& key, long fallback) const {
  const auto it = values_.find(to_lower(key));
  if (it == values_.end()) {
    read_[to_lower(key)] = std::to_string(fallback);
    return fallback;
  }
  try {
    std::size_t pos = 0;
    const long v = std::stol(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing chars");
    read_[to_lower(key)] = it->second;
    return v;
  } catch (const std::exception&) {
    throw ConfigError("config key '" + key + "' is not an integer: " + it->second);
  }
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(to_lower(key));
  if (it == values_.end()) {
    read_[to_lower(key)] = std::to_string(fallback);
    return fallback;
  }
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing chars");
    read_[to_lower(key)] = it->second;
    return v;
  } catch (const std::exception&) {
    throw ConfigError("config key '" + key + "' is not a number: " + it->second);
  }
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(to_lower(key));
  if (it == values_.end()) {
    read_[to_lower(key)] = fallback ? "true" : "false";
    return fallback;
  }
  const std::string v = to_lower(it->second);
  read_[to_lower(key)] = v;
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw ConfigError("config key '" + key + "' is not a boolean: " + it->second);
}

std::string Config::require_string(const std::string& key) const {
  const auto it = values_.find(to_lower(key));
  if (it == values_.end()) throw ConfigError("missing required config key: " + key);
  read_[to_lower(key)] = it->second;
  return it->second;
}

void Config::overlay(const Config& other) {
  for (const auto& [k, v] : other.values_) values_[k] = v;
}

void Config::load_env(const std::vector<std::string>& keys) {
  for (const auto& key : keys) {
    const std::string env_name = "FEDCA_" + to_upper(key);
    if (const char* env = std::getenv(env_name.c_str()); env != nullptr) {
      set(key, env);
    }
  }
}

std::vector<std::pair<std::string, std::string>> Config::effective() const {
  return {read_.begin(), read_.end()};
}

std::string Config::dump() const {
  std::ostringstream out;
  bool first = true;
  for (const auto& [k, v] : read_) {
    if (!first) out << ' ';
    first = false;
    out << k << '=' << v;
  }
  return out.str();
}

}  // namespace fedca::util
