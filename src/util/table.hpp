// CSV and aligned-text table writers.
//
// Every bench binary emits its results twice: as an aligned human-readable
// table on stdout (mirroring the paper's tables/figures), and optionally as
// CSV for plotting. Keeping the writers here guarantees all experiments
// share one stable output format.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace fedca::util {

// Accumulates rows of string cells and renders them.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Number formatting helper: fixed `digits` decimals.
  static std::string fmt(double value, int digits = 3);

  void add_row(std::vector<std::string> cells);
  std::size_t row_count() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  // Renders with column alignment and a separator under the header.
  void print(std::ostream& os) const;
  // RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  void write_csv(std::ostream& os) const;
  // Writes CSV to `path`; throws std::runtime_error on I/O failure.
  void save_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Convenience for bench headers: "== <title> ==" plus a config echo line.
void print_section(std::ostream& os, const std::string& title,
                   const std::string& config_line = "");

}  // namespace fedca::util
