// Clang thread-safety-analysis annotations (no-ops off clang).
//
// These macros put the repo's lock discipline into the type system: every
// mutex-protected member is declared FEDCA_GUARDED_BY its mutex, private
// helpers that expect the lock to already be held are FEDCA_REQUIRES, and
// the annotated primitives in util/sync.hpp (Mutex / MutexLock / CondVar)
// tell the analysis where capabilities are acquired and released. Building
// with clang and -DFEDCA_STATIC_ANALYSIS=ON turns on
// -Wthread-safety -Werror=thread-safety, which rejects at compile time any
// access to a guarded member without its mutex — races the runtime TSan
// pass can only catch when the seed workload happens to execute them.
//
// On non-clang compilers every macro expands to nothing, so the annotations
// cost nothing and impose no toolchain requirement.
//
// Naming follows the standard capability vocabulary (the same one Abseil's
// thread_annotations.h and clang's documentation use), prefixed FEDCA_.
#pragma once

#if defined(__clang__)
#define FEDCA_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define FEDCA_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off clang
#endif

// Type is a capability (a lock). The string names the capability kind in
// diagnostics, e.g. FEDCA_CAPABILITY("mutex").
#define FEDCA_CAPABILITY(x) FEDCA_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

// RAII type that acquires a capability in its constructor and releases it
// in its destructor (MutexLock).
#define FEDCA_SCOPED_CAPABILITY FEDCA_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

// Data member readable/writable only while holding the given capability.
#define FEDCA_GUARDED_BY(x) FEDCA_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

// Pointer member whose *pointee* is protected by the given capability (the
// pointer itself may be read freely).
#define FEDCA_PT_GUARDED_BY(x) FEDCA_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

// Function requires the capability to be held on entry (and does not
// release it) — the _locked() helper contract.
#define FEDCA_REQUIRES(...) \
  FEDCA_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

// Function acquires the capability and holds it past return.
#define FEDCA_ACQUIRE(...) \
  FEDCA_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

// Function releases a held capability before returning.
#define FEDCA_RELEASE(...) \
  FEDCA_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

// Function acquires the capability only when it returns `result`.
#define FEDCA_TRY_ACQUIRE(result, ...) \
  FEDCA_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(result, __VA_ARGS__))

// Function must NOT be called with the capability held (deadlock guard for
// functions that acquire it themselves).
#define FEDCA_EXCLUDES(...) \
  FEDCA_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

// Function returns a reference to the given capability.
#define FEDCA_RETURN_CAPABILITY(x) FEDCA_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

// Escape hatch: turns the analysis off for one function. Every use must
// carry a comment explaining why the access is safe.
#define FEDCA_NO_THREAD_SAFETY_ANALYSIS \
  FEDCA_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
