#include "util/rng.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>

namespace fedca::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // SplitMix64 seeding guarantees a non-degenerate xoshiro state even for
  // seed == 0.
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::fork(std::uint64_t stream_id) const {
  // Mix the parent's state with the stream id through SplitMix64 so that
  // distinct stream ids give decorrelated children and the parent state is
  // left untouched.
  std::uint64_t mix = state_[0] ^ rotl(state_[2], 13) ^ (stream_id * 0xD1342543DE82EF95ULL);
  return Rng(splitmix64(mix));
}

RngState Rng::save() const {
  RngState state;
  for (int i = 0; i < 4; ++i) state.s[i] = state_[i];
  state.cached_normal = cached_normal_;
  state.has_cached_normal = has_cached_normal_;
  return state;
}

void Rng::restore(const RngState& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state.s[i];
  cached_normal_ = state.cached_normal;
  has_cached_normal_ = state.has_cached_normal;
}

double Rng::uniform() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  assert(n > 0);
  // Lemire-style rejection-free-ish bounded draw with rejection to remove
  // modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::gamma(double shape, double scale) {
  assert(shape > 0.0 && scale > 0.0);
  if (shape < 1.0) {
    // Boost: Gamma(a) = Gamma(a+1) * U^{1/a}.
    const double u = std::max(uniform(), 1e-300);
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia-Tsang squeeze method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return scale * d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return scale * d * v;
    }
  }
}

std::vector<double> Rng::dirichlet(double alpha, std::size_t dims) {
  return dirichlet(std::vector<double>(dims, alpha));
}

std::vector<double> Rng::dirichlet(const std::vector<double>& alphas) {
  std::vector<double> draws(alphas.size());
  double total = 0.0;
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    draws[i] = gamma(alphas[i], 1.0);
    total += draws[i];
  }
  if (total <= 0.0) {
    // Numerically possible for tiny alpha: fall back to a single random
    // category carrying all mass, which is the alpha -> 0 limit.
    std::fill(draws.begin(), draws.end(), 0.0);
    draws[static_cast<std::size_t>(uniform_index(draws.size()))] = 1.0;
    return draws;
  }
  for (auto& d : draws) d /= total;
  return draws;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  assert(k <= n);
  // Floyd's algorithm.
  std::set<std::size_t> chosen;
  for (std::size_t j = n - k; j < n; ++j) {
    const std::size_t t = static_cast<std::size_t>(uniform_index(j + 1));
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  return std::vector<std::size_t>(chosen.begin(), chosen.end());
}

}  // namespace fedca::util
