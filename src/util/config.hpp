// Lightweight configuration map with typed accessors.
//
// Experiment and bench binaries are parameterized through key=value pairs
// coming from (in increasing precedence) built-in defaults, environment
// variables (FEDCA_<KEY>), and command-line arguments (key=value). The
// Config class records every key that was read so binaries can print the
// effective configuration next to their results — a reproduction harness
// should never have silent knobs.
#pragma once

#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace fedca::util {

class ConfigError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Config {
 public:
  Config() = default;

  // Parses "key=value" tokens; tokens without '=' raise ConfigError.
  static Config from_args(int argc, const char* const* argv);

  void set(const std::string& key, std::string value);
  bool contains(const std::string& key) const;

  // Typed getters with defaults. Reading records the key and its effective
  // value for dump(). Malformed values raise ConfigError.
  std::string get_string(const std::string& key, const std::string& fallback) const;
  long get_int(const std::string& key, long fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  // Required variants: throw if the key is absent.
  std::string require_string(const std::string& key) const;

  // Merges `other` on top of this config (other wins on conflicts).
  void overlay(const Config& other);

  // Loads FEDCA_<KEY> environment variables for each key in `keys`
  // (lower-cased key in the map).
  void load_env(const std::vector<std::string>& keys);

  // All keys that were read so far, with their effective values, sorted.
  std::vector<std::pair<std::string, std::string>> effective() const;

  // "key=value key=value ..." of effective() — for experiment headers.
  std::string dump() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, std::string> read_;
};

}  // namespace fedca::util
