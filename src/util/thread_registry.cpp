#include "util/thread_registry.hpp"

#include <atomic>
#include <map>

#include "util/sync.hpp"

namespace fedca::util {

namespace {

std::atomic<std::uint32_t> g_next_id{1};

Mutex& names_mutex() {
  static Mutex m;
  return m;
}

std::map<std::uint32_t, std::string>& names() {
  static std::map<std::uint32_t, std::string> m;
  return m;
}

}  // namespace

std::uint32_t ThreadRegistry::current_id() {
  thread_local const std::uint32_t id =
      g_next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void ThreadRegistry::register_current(const std::string& name) {
  const std::uint32_t id = current_id();
  MutexLock lock(names_mutex());
  names()[id] = name;
}

std::string ThreadRegistry::name_of(std::uint32_t id) {
  MutexLock lock(names_mutex());
  const auto it = names().find(id);
  return it == names().end() ? std::string() : it->second;
}

std::uint32_t ThreadRegistry::registered_count() {
  return g_next_id.load(std::memory_order_relaxed) - 1;
}

}  // namespace fedca::util
