// Fixed-size thread pool with a parallel_for convenience.
//
// The round engine trains many simulated clients per round; their local SGD
// passes are independent, so on multi-core hosts we farm them out here.
// Determinism note: every unit of work owns its forked Rng stream, so the
// *results* are identical regardless of worker count or interleaving — the
// pool only changes wall-clock time, never experiment output.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace fedca::util {

class ThreadPool {
 public:
  // Per-task latency callback: wall-clock seconds the task waited in the
  // queue and seconds it ran (called after the task finishes, including
  // when it throws). Installed by the observability layer; must be
  // thread-safe — it runs concurrently on worker threads.
  using TaskObserver = std::function<void(double queue_seconds, double run_seconds)>;

  // `workers` == 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return threads_.size(); }

  // Enqueues one task; returns a future for its completion. Exceptions
  // thrown by the task are delivered through the future.
  std::future<void> submit(std::function<void()> task);

  // Installs (or clears, with nullptr) the latency observer. Tasks already
  // queued keep the observer they were submitted under.
  void set_task_observer(TaskObserver observer);

  // Runs body(i) for i in [0, n) across the pool and blocks until all are
  // done. Rethrows the first task exception. Chunked statically so results
  // and exception choice are deterministic.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  // Like parallel_for, but hands indices out through an atomic counter so
  // uneven work (clients whose local rounds differ wildly in cost) never
  // serializes behind a static chunk, and caps concurrency at
  // `max_workers` (0 = whole pool). Determinism contract: callers must
  // write results into pre-sized per-index slots; scheduling then cannot
  // affect output. Every index runs even if an earlier one throws, and the
  // exception of the *lowest* throwing index is rethrown, so error
  // behaviour is schedule-independent too. max_workers <= 1 (or a 1-worker
  // pool, or n <= 1) runs inline on the calling thread in index order.
  void parallel_for_dynamic(std::size_t n, const std::function<void(std::size_t)>& body,
                            std::size_t max_workers = 0);

  // Resolves a requested worker count: non-zero wins; otherwise the
  // FEDCA_THREADS environment variable (when set to a positive integer);
  // otherwise hardware concurrency. Always >= 1.
  static std::size_t resolve_workers(std::size_t requested);

  // Process-wide shared pool (lazily constructed, one per process). Sized
  // by resolve_workers(0), i.e. FEDCA_THREADS caps/raises it.
  static ThreadPool& shared();

 private:
  void worker_loop();

  // Immutable after the constructor returns (workers only read their own
  // entry via `this`); not guarded.
  std::vector<std::thread> threads_;
  Mutex mutex_;
  CondVar cv_;
  std::deque<std::packaged_task<void()>> queue_ FEDCA_GUARDED_BY(mutex_);
  bool stop_ FEDCA_GUARDED_BY(mutex_) = false;
  std::shared_ptr<const TaskObserver> observer_ FEDCA_GUARDED_BY(mutex_);
};

}  // namespace fedca::util
