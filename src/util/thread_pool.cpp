#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>

#include "util/thread_registry.hpp"

namespace fedca::util {

namespace {

// Task-latency observer timestamps. The observer measures *real*
// queue/run latency (threadpool.queue_seconds / run_seconds), which is
// host-clock work by definition — a sanctioned exception to the
// virtual-clock discipline the wall-clock lint rule enforces.
double observer_now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())  // lint:wallclock analyze:waive(wall-clock)
      .count();
}

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::shared_ptr<const TaskObserver> observer;
  {
    MutexLock lock(mutex_);
    observer = observer_;
  }
  if (observer) {
    const double enqueued = observer_now_seconds();
    task = [observer, enqueued, inner = std::move(task)] {
      const double started = observer_now_seconds();
      const double queued = started - enqueued;
      try {
        inner();
      } catch (...) {
        (*observer)(queued, observer_now_seconds() - started);
        throw;
      }
      (*observer)(queued, observer_now_seconds() - started);
    };
  }
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> fut = packaged.get_future();
  {
    MutexLock lock(mutex_);
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::set_task_observer(TaskObserver observer) {
  MutexLock lock(mutex_);
  observer_ = observer ? std::make_shared<const TaskObserver>(std::move(observer))
                       : nullptr;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t workers = worker_count();
  if (workers <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  const std::size_t chunks = std::min(n, workers * 4);
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = n * c / chunks;
    const std::size_t end = n * (c + 1) / chunks;
    futures.push_back(submit([&body, begin, end] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& fut : futures) {
    try {
      fut.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::parallel_for_dynamic(std::size_t n,
                                      const std::function<void(std::size_t)>& body,
                                      std::size_t max_workers) {
  if (n == 0) return;
  std::size_t cap = max_workers == 0 ? worker_count() : std::min(max_workers, worker_count());
  if (cap <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  struct Shared {
    std::atomic<std::size_t> next{0};
    Mutex error_mutex;
    std::size_t error_index FEDCA_GUARDED_BY(error_mutex);
    std::exception_ptr error FEDCA_GUARDED_BY(error_mutex);
    Shared(std::size_t n) : error_index(n) {}
  };
  Shared shared(n);
  const std::size_t pumps = std::min(cap, n);
  std::vector<std::future<void>> futures;
  futures.reserve(pumps);
  for (std::size_t p = 0; p < pumps; ++p) {
    futures.push_back(submit([&shared, &body, n] {
      for (;;) {
        const std::size_t i = shared.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          body(i);
        } catch (...) {
          MutexLock lock(shared.error_mutex);
          if (i < shared.error_index) {
            shared.error_index = i;
            shared.error = std::current_exception();
          }
        }
      }
    }));
  }
  for (auto& fut : futures) fut.get();
  // All workers have joined, but take the lock anyway: it costs nothing
  // here and keeps the guarded-access discipline exception-free.
  std::exception_ptr error;
  {
    MutexLock lock(shared.error_mutex);
    error = shared.error;
  }
  if (error) std::rethrow_exception(error);
}

std::size_t ThreadPool::resolve_workers(std::size_t requested) {
  if (requested != 0) return requested;
  if (const char* env = std::getenv("FEDCA_THREADS")) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<std::size_t>(parsed);
    }
  }
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(resolve_workers(0));
  return pool;
}

void ThreadPool::worker_loop() {
  // Register with the process-wide thread registry up front: the flight
  // recorder indexes its per-thread rings by these ids, so pool workers
  // get stable, low ids (and a name in trace/debug output) before the
  // first task ever records an event.
  ThreadRegistry::register_current("pool.worker");
  for (;;) {
    std::packaged_task<void()> task;
    {
      MutexLock lock(mutex_);
      // Plain predicate loop (not a lambda handed to the cv): the guarded
      // reads of stop_/queue_ stay inside this annotated scope.
      while (!stop_ && queue_.empty()) cv_.wait(mutex_);
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace fedca::util
