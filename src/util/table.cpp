#include "util/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace fedca::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

std::string Table::fmt(double value, int digits) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(digits) << value;
  return out.str();
}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::write_csv(std::ostream& os) const {
  auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
}

void Table::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open CSV output file: " + path);
  write_csv(out);
  if (!out.good()) throw std::runtime_error("failed writing CSV file: " + path);
}

void print_section(std::ostream& os, const std::string& title,
                   const std::string& config_line) {
  os << "\n== " << title << " ==\n";
  if (!config_line.empty()) os << "config: " << config_line << '\n';
}

}  // namespace fedca::util
