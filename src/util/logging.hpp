// Minimal leveled logger for the FedCA library.
//
// Logging goes to stderr so that experiment/bench binaries can reserve
// stdout for machine-readable tables. The level is process-global and can
// be set programmatically or through the FEDCA_LOG environment variable
// (trace|debug|info|warn|error|off).
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace fedca::util {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

// Returns the current process-global log level. The first call reads the
// FEDCA_LOG environment variable; defaults to kWarn so tests stay quiet.
LogLevel log_level();

// Overrides the process-global log level.
void set_log_level(LogLevel level);

// Parses a level name ("info", "debug", ...). Unknown names yield kWarn.
LogLevel parse_log_level(std::string_view name);

// Human-readable name of a level ("INFO", ...).
std::string_view log_level_name(LogLevel level);

// Emits one formatted line "[LEVEL] component: message" if `level` is at or
// above the global threshold. Thread-safe (single write syscall per line).
void log_line(LogLevel level, std::string_view component, std::string_view message);

// Test hook: redirects emitted lines to `sink` instead of stderr; nullptr
// restores stderr. Not for production use. The sink runs outside the
// logging lock (so it may log without deadlocking); a sink shared across
// threads must serialize itself.
using LogSink = void (*)(LogLevel level, std::string_view component,
                         std::string_view message);
void set_log_sink_for_testing(LogSink sink);

namespace detail {

// Formats and writes one line WITHOUT re-checking the level — the caller
// already decided. Thread-safe.
void emit_line(LogLevel level, std::string_view component, std::string_view message);

// Stream-style builder so call sites can write
//   FEDCA_LOG_INFO("server") << "round " << r << " done";
// The enabled decision is made ONCE, at construction: a disabled stream
// skips all formatting, and a set_log_level() change mid-stream can
// neither tear the line nor resurrect a suppressed one.
class LogStream {
 public:
  LogStream(LogLevel level, std::string_view component)
      : level_(level),
        component_(component),
        enabled_(level != LogLevel::kOff && level >= log_level()) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() {
    if (enabled_) emit_line(level_, component_, stream_.str());
  }

  template <typename T>
  LogStream& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace fedca::util

#define FEDCA_LOG_TRACE(component) \
  ::fedca::util::detail::LogStream(::fedca::util::LogLevel::kTrace, (component))
#define FEDCA_LOG_DEBUG(component) \
  ::fedca::util::detail::LogStream(::fedca::util::LogLevel::kDebug, (component))
#define FEDCA_LOG_INFO(component) \
  ::fedca::util::detail::LogStream(::fedca::util::LogLevel::kInfo, (component))
#define FEDCA_LOG_WARN(component) \
  ::fedca::util::detail::LogStream(::fedca::util::LogLevel::kWarn, (component))
#define FEDCA_LOG_ERROR(component) \
  ::fedca::util::detail::LogStream(::fedca::util::LogLevel::kError, (component))
