// Process-wide thread registry — stable, small, dense thread ids.
//
// std::thread::id is opaque and unordered; the observability layer needs a
// small integer per thread so it can (a) index the flight recorder's
// fixed array of per-thread ring buffers in O(1) without hashing and
// (b) emit stable Chrome-trace tids for wall-clock spans. Ids are handed
// out lazily, first-come-first-served, starting at 1, and never reused:
// a thread keeps its id for the life of the process. ThreadPool workers
// register themselves (with a name) as soon as they start, so pool
// threads occupy the low, predictable end of the id space.
//
// current_id() after the first call is a thread-local read — no locks, no
// atomics — which keeps it safe on the recorder's hot path.
#pragma once

#include <cstdint>
#include <string>

namespace fedca::util {

class ThreadRegistry {
 public:
  // Upper bound on distinct registered threads; ids beyond it are still
  // handed out (monotonically) but consumers with fixed per-thread slots
  // (the recorder) treat them as overflow. Far above any real worker
  // count here, tiny as an array of pointers.
  static constexpr std::uint32_t kMaxTrackedThreads = 256;

  // Stable id (>= 1) of the calling thread, assigned on first call.
  static std::uint32_t current_id();

  // Attaches a human-readable name to the calling thread (idempotent;
  // last writer wins). Purely diagnostic.
  static void register_current(const std::string& name);

  // Name attached to `id`, or "" when none was registered.
  static std::string name_of(std::uint32_t id);

  // Number of ids handed out so far (high-water mark, not a live count —
  // ids of exited threads stay allocated).
  static std::uint32_t registered_count();
};

}  // namespace fedca::util
