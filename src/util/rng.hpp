// Deterministic pseudo-random number generation for reproducible experiments.
//
// The entire repository draws randomness exclusively through Rng so that a
// fixed seed yields byte-identical results across runs and platforms. The
// core generator is xoshiro256** (public domain, Blackman & Vigna), seeded
// via SplitMix64. On top of the raw generator we provide the distributions
// the FedCA paper needs:
//   * uniform / normal / lognormal   — synthetic data & device speeds,
//   * gamma                          — fast/slow availability durations
//                                      (Γ(2,40) and Γ(2,6) in Sec. 5.1),
//   * dirichlet                      — non-IID label partitioning (α = 0.1),
//   * sampling without replacement   — intra-layer parameter sampling.
#pragma once

#include <cstdint>
#include <vector>

namespace fedca::util {

// Exact snapshot of an Rng — a POD suitable for compact per-client records
// (sim::ClientRegistry): save() + restore() round-trips the generator
// bit-for-bit, including the Box-Muller cached normal, so a resumed stream
// continues exactly where the snapshot was taken.
struct RngState {
  std::uint64_t s[4] = {0, 0, 0, 0};
  double cached_normal = 0.0;
  bool has_cached_normal = false;
};

// Deterministic random generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }

  // Raw 64 random bits (xoshiro256**).
  result_type operator()();

  // Derives an independent child generator; stream `stream_id` from the same
  // parent is always the same child. Used to give every client / module its
  // own decorrelated stream.
  Rng fork(std::uint64_t stream_id) const;

  // Exact state snapshot / restore (see RngState).
  RngState save() const;
  void restore(const RngState& state);

  // Uniform double in [0, 1).
  double uniform();
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);
  // Standard normal via Box-Muller (deterministic pairing).
  double normal();
  double normal(double mean, double stddev);
  // Lognormal with the *underlying* normal's mean/stddev.
  double lognormal(double mu, double sigma);
  // Gamma(shape, scale) via Marsaglia-Tsang, with Johnk boost for shape < 1.
  double gamma(double shape, double scale);
  // Symmetric Dirichlet(alpha) over `dims` categories; sums to 1.
  std::vector<double> dirichlet(double alpha, std::size_t dims);
  // General Dirichlet with per-category concentration.
  std::vector<double> dirichlet(const std::vector<double>& alphas);

  // k distinct indices uniformly drawn from [0, n), in increasing order.
  // Requires k <= n. Uses Floyd's algorithm: O(k) memory.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  std::uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace fedca::util
