// Summary statistics, percentiles, and empirical CDFs.
//
// The evaluation section of the paper reports CDFs (Fig. 8), means
// (Table 1's per-round time), and distribution-shaped traces; this module
// provides the numerical plumbing for those reports.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace fedca::util {

// Running mean / variance accumulator (Welford). Numerically stable for
// long experiment streams.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  // Population variance; 0 when fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Linear-interpolated percentile of a sample, q in [0, 1]. The input is
// copied and sorted. Empty input returns 0.
double percentile(std::vector<double> samples, double q);

// Empirical CDF of a sample set, evaluated at each distinct sample value.
// Returns (value, fraction <= value) pairs sorted by value. Fig. 8 of the
// paper is exactly this applied to trigger iterations.
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> samples);

  // Fraction of samples <= x. 0 for x below all samples.
  double at(double x) const;
  std::size_t sample_count() const { return sorted_.size(); }

  // Evaluates the CDF on `points` evenly spaced values covering
  // [lo, hi]; used by the fig8 bench to print plottable series.
  std::vector<std::pair<double, double>> series(double lo, double hi,
                                                std::size_t points) const;
  // CDF steps at the sample values themselves.
  std::vector<std::pair<double, double>> steps() const;

  const std::vector<double>& sorted_samples() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

// Histogram over [lo, hi) with `bins` equal-width buckets; values outside
// the range are clamped into the first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t total() const { return total_; }
  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count_in_bin(std::size_t bin) const { return counts_.at(bin); }
  double bin_lower(std::size_t bin) const;
  double bin_upper(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace fedca::util
