// Scenario runner: load a declarative scenario file and run it.
//
// Usage: fedca_scenario FILE [key=value ...]
//
// The file is the scenario tier; FEDCA_* environment variables overlay it
// (env tier); trailing key=value arguments are the programmatic tier and
// win over both. Supported overrides: seed, rounds, target, workers,
// tensor_pool (auto|on|off), updates (async engine), trace, metrics,
// report.
//
// Exit codes: 0 success, 1 usage error, 2 scenario parse/validation error
// (the ScenarioError's file:line message is printed to stderr).
#include <iostream>
#include <memory>
#include <string>

#include "core/factory.hpp"
#include "fl/async_engine.hpp"
#include "fl/experiment.hpp"
#include "fl/scenario.hpp"
#include "obs/trace.hpp"
#include "sim/scenario.hpp"
#include "util/config.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace fedca;

namespace {

int run(const fl::Scenario& scenario, fl::ExperimentOptions& options,
        const util::Config& overrides) {
  // Programmatic tier: explicit command-line overrides beat file and env.
  options.seed = static_cast<std::uint64_t>(
      overrides.get_int("seed", static_cast<long long>(options.seed)));
  options.max_rounds = static_cast<std::size_t>(overrides.get_int(
      "rounds", static_cast<long long>(options.max_rounds)));
  options.target_accuracy =
      overrides.get_double("target", options.target_accuracy);
  options.worker_threads = static_cast<std::size_t>(overrides.get_int(
      "workers", static_cast<long long>(options.worker_threads)));
  const std::string pool = overrides.get_string("tensor_pool", "");
  if (pool == "on") {
    options.tensor_pool = 1;
  } else if (pool == "off") {
    options.tensor_pool = 0;
  } else if (pool == "auto") {
    options.tensor_pool = -1;
  } else if (!pool.empty()) {
    std::cerr << "fedca_scenario: tensor_pool must be auto, on, or off\n";
    return 1;
  }
  options.trace_path = overrides.get_string("trace", options.trace_path);
  options.metrics_path = overrides.get_string("metrics", options.metrics_path);
  options.report_path = overrides.get_string("report", options.report_path);

  util::Config scheme_cfg = fl::scheme_config(scenario);
  std::unique_ptr<fl::Scheme> scheme =
      core::make_scheme(scenario.scheme, scheme_cfg, options.seed);

  if (!scenario.async_engine) {
    const fl::ExperimentResult result = fl::run_experiment(options, *scheme);
    util::Table table({"scheme", "rounds", "virtual time (s)",
                       "final accuracy", "mean round (s)"});
    table.add_row({result.scheme_name, std::to_string(result.rounds.size()),
                   util::Table::fmt(result.total_time, 1),
                   util::Table::fmt(result.final_accuracy, 3),
                   util::Table::fmt(result.mean_round_seconds, 2)});
    table.print(std::cout);
    return 0;
  }

  // Async engine path: run_experiment() is round-based, so wire the
  // cluster/model/shards directly and drive a fixed number of updates.
  const std::size_t updates = static_cast<std::size_t>(overrides.get_int(
      "updates", static_cast<long long>(scenario.async_updates)));
  const auto flush_paths = obs::configure(
      options.trace_path, options.metrics_path, options.report_path);
  fl::ExperimentSetup setup = fl::make_setup(options, *scheme);
  fl::AsyncEngineOptions async_options = scenario.async;
  async_options.optimizer = options.optimizer;
  async_options.worker_threads = options.worker_threads;
  fl::AsyncEngine async(setup.model.get(), setup.cluster.get(), setup.shards,
                        async_options, util::Rng(options.seed ^ 0xA5));
  async.run_updates(updates);
  const auto eval = fl::evaluate_global(setup);
  obs::flush_outputs(flush_paths.second);
  std::cout << "async: " << updates << " updates, final accuracy "
            << util::Table::fmt(eval.accuracy, 3) << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || argv[1][0] == '\0' || argv[1][0] == '-') {
    std::cerr << "usage: fedca_scenario FILE [key=value ...]\n";
    return 1;
  }
  try {
    const fl::Scenario scenario = fl::load_scenario_file(argv[1]);
    // Env tier (FEDCA_TRACE/METRICS/REPORT/THREADS/TENSOR_POOL) overlays
    // the file; the command line overlays both inside run().
    fl::ExperimentOptions options = fl::resolve_options(scenario);
    // Overrides start at argv[2]: shift so Config sees them as args.
    const util::Config overrides = util::Config::from_args(argc - 1, argv + 1);
    util::print_section(std::cout,
                        scenario.name.empty() ? std::string("scenario")
                                              : scenario.name,
                        argv[1]);
    return run(scenario, options, overrides);
  } catch (const sim::scenario::ScenarioError& e) {
    std::cerr << "fedca_scenario: " << e.what() << "\n";
    return 2;
  }
}
