// Extending the framework: a custom FL scheme with its own client policy.
//
// FedCA's client-autonomy hooks (per-iteration callbacks, eager layers,
// retransmission selection) are public extension points. This example
// implements "LossPlateau", a toy scheme whose clients stop local training
// when their batch loss plateaus — no statistical-progress machinery —
// and races it against FedAvg and FedCA on the same workload.
//
// Usage: custom_scheme [key=value ...]
#include <cmath>
#include <iostream>
#include <memory>

#include "core/factory.hpp"
#include "fl/experiment.hpp"
#include "util/config.hpp"
#include "util/table.hpp"

using namespace fedca;

namespace {

// Client half: track the batch-loss trend through the live model and stop
// on plateau. (A real system would read the loss from the training loop;
// here we recompute a proxy from gradient magnitudes, which the policy can
// observe through the model's parameter gradients.)
class LossPlateauPolicy : public fl::ClientPolicy {
 public:
  explicit LossPlateauPolicy(double plateau_ratio) : plateau_ratio_(plateau_ratio) {}

  void on_round_start(const fl::RoundInfo&, const nn::ModelState&) override {
    previous_grad_norm_ = -1.0;
    flat_steps_ = 0;
  }

  fl::IterationDecision after_iteration(const fl::IterationView& view) override {
    // Gradient norm of the last backward pass — a loss-trend proxy the
    // policy can read without touching the data pipeline.
    double norm_sq = 0.0;
    for (const nn::Parameter* p : view.model->parameters()) {
      for (std::size_t i = 0; i < p->grad.numel(); ++i) {
        norm_sq += static_cast<double>(p->grad[i]) * p->grad[i];
      }
    }
    const double norm = std::sqrt(norm_sq);
    fl::IterationDecision decision;
    if (previous_grad_norm_ > 0.0 &&
        std::abs(norm - previous_grad_norm_) < plateau_ratio_ * previous_grad_norm_) {
      ++flat_steps_;
    } else {
      flat_steps_ = 0;
    }
    previous_grad_norm_ = norm;
    // Three consecutive flat gradient norms => plateau => stop.
    decision.stop = flat_steps_ >= 3 && view.iteration >= 5;
    return decision;
  }

 private:
  double plateau_ratio_;
  double previous_grad_norm_ = -1.0;
  std::size_t flat_steps_ = 0;
};

// Server half: stock planning (full workload, no deadline), one policy
// per client.
class LossPlateauScheme : public fl::Scheme {
 public:
  explicit LossPlateauScheme(double plateau_ratio) : plateau_ratio_(plateau_ratio) {}

  std::string name() const override { return "LossPlateau"; }

  void bind(std::size_t num_clients, std::size_t nominal_iterations) override {
    Scheme::bind(num_clients, nominal_iterations);
    policies_.clear();
    for (std::size_t c = 0; c < num_clients; ++c) {
      policies_.push_back(std::make_unique<LossPlateauPolicy>(plateau_ratio_));
    }
  }

  fl::ClientPolicy& client_policy(std::size_t client_id) override {
    return *policies_.at(client_id);
  }

 private:
  double plateau_ratio_;
  std::vector<std::unique_ptr<LossPlateauPolicy>> policies_;
};

}  // namespace

int main(int argc, char** argv) {
  util::Config config = util::Config::from_args(argc, argv);

  fl::ExperimentOptions options;
  options.model = nn::ModelKind::kCnn;
  options.num_clients = static_cast<std::size_t>(config.get_int("clients", 10));
  options.local_iterations = static_cast<std::size_t>(config.get_int("k", 20));
  options.batch_size = 10;
  options.train_samples = static_cast<std::size_t>(config.get_int("samples", 1000));
  options.test_samples = 256;
  options.max_rounds = static_cast<std::size_t>(config.get_int("rounds", 12));
  options.data_spec.noise_stddev = config.get_double("noise", 1.2);
  options.seed = static_cast<std::uint64_t>(config.get_int("seed", 21));
  config.set("fedca_period", config.get_string("fedca_period", "4"));

  util::Table table({"scheme", "rounds", "virtual time (s)", "final accuracy",
                     "mean iterations run"});
  auto run = [&](fl::Scheme& scheme) {
    const fl::ExperimentResult result = fl::run_experiment(options, scheme);
    double iter_sum = 0.0;
    std::size_t iter_count = 0;
    for (const auto& round : result.rounds) {
      for (const auto& c : round.clients) {
        iter_sum += static_cast<double>(c.iterations_run);
        ++iter_count;
      }
    }
    table.add_row({result.scheme_name, std::to_string(result.rounds.size()),
                   util::Table::fmt(result.total_time, 1),
                   util::Table::fmt(result.final_accuracy, 3),
                   util::Table::fmt(iter_sum / static_cast<double>(iter_count), 1)});
  };

  fl::FedAvgScheme fedavg;
  run(fedavg);
  LossPlateauScheme custom(config.get_double("plateau_ratio", 0.05));
  run(custom);
  auto fedca = core::make_scheme("fedca", config, options.seed);
  run(*fedca);

  util::print_section(std::cout,
                      "Custom scheme (LossPlateau) vs FedAvg vs FedCA", config.dump());
  table.print(std::cout);
  std::cout << "\nWriting a scheme = subclass fl::Scheme (server planning) +\n"
               "fl::ClientPolicy (per-iteration client autonomy). The engine\n"
               "handles timing, transfers, aggregation, and bookkeeping.\n";
  return 0;
}
