// Heterogeneous-cluster scenario: the straggler problem and how FedCA's
// early stopping defuses it.
//
// Demonstrates the trace/sim substrate directly — device profiles,
// dynamic speed timelines, per-round completion distributions — then runs
// FedAvg and FedCA on the same cluster and compares straggler impact.
//
// Usage: heterogeneous_cluster [key=value ...]
#include <algorithm>
#include <iostream>

#include "core/factory.hpp"
#include "fl/experiment.hpp"
#include "util/config.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace fedca;

int main(int argc, char** argv) {
  util::Config config = util::Config::from_args(argc, argv);

  // --- Part 1: the simulated device fleet. ---
  sim::ClusterOptions cluster_options;
  cluster_options.num_clients =
      static_cast<std::size_t>(config.get_int("clients", 12));
  util::Rng rng(static_cast<std::uint64_t>(config.get_int("seed", 7)));
  sim::Cluster cluster(cluster_options, rng);

  util::Table fleet({"client", "base speed", "bandwidth (Mbps)",
                     "speed @ t=0s", "speed @ t=60s", "avg speed [0, 300s]"});
  for (std::size_t c = 0; c < cluster.size(); ++c) {
    auto& device = cluster.client(c);
    fleet.add_row({std::to_string(c), util::Table::fmt(device.profile().base_speed, 2),
                   util::Table::fmt(device.profile().bandwidth_mbps, 1),
                   util::Table::fmt(device.timeline().speed_at(0.0), 2),
                   util::Table::fmt(device.timeline().speed_at(60.0), 2),
                   util::Table::fmt(device.timeline().average_speed(0.0, 300.0), 2)});
  }
  util::print_section(std::cout, "Simulated device fleet (FedScale-style "
                                 "heterogeneity + gamma fast/slow dynamicity)");
  fleet.print(std::cout);

  // --- Part 2: straggler impact per scheme. ---
  fl::ExperimentOptions options;
  options.model = nn::ModelKind::kCnn;
  options.num_clients = cluster_options.num_clients;
  options.local_iterations = static_cast<std::size_t>(config.get_int("k", 20));
  options.batch_size = 10;
  options.train_samples = static_cast<std::size_t>(config.get_int("samples", 1000));
  options.test_samples = 256;
  options.max_rounds = static_cast<std::size_t>(config.get_int("rounds", 12));
  options.seed = static_cast<std::uint64_t>(config.get_int("seed", 7));
  config.set("fedca_period", config.get_string("fedca_period", "4"));

  util::Table impact({"scheme", "mean round (s)", "p95 round (s)",
                      "mean straggler wait (s)", "early stops"});
  for (const std::string& name : {std::string("fedavg"), std::string("fedca")}) {
    auto scheme = core::make_scheme(name, config, options.seed);
    const fl::ExperimentResult result = fl::run_experiment(options, *scheme);

    std::vector<double> durations;
    util::RunningStats straggler_wait;  // last collected arrival - median arrival
    for (const auto& round : result.rounds) {
      durations.push_back(round.duration());
      std::vector<double> arrivals;
      for (const auto& c : round.clients) {
        if (c.collected) arrivals.push_back(c.arrival_time - round.start_time);
      }
      if (arrivals.size() > 1) {
        std::sort(arrivals.begin(), arrivals.end());
        straggler_wait.add(arrivals.back() - arrivals[arrivals.size() / 2]);
      }
    }
    util::RunningStats stats;
    for (const double d : durations) stats.add(d);
    impact.add_row({result.scheme_name, util::Table::fmt(stats.mean(), 2),
                    util::Table::fmt(util::percentile(durations, 0.95), 2),
                    util::Table::fmt(straggler_wait.mean(), 2),
                    std::to_string(result.early_stop_iterations().size())});
  }
  util::print_section(std::cout, "Straggler impact: FedAvg waits for slow "
                                 "devices; FedCA's clients stop autonomously");
  impact.print(std::cout);
  return 0;
}
