// Quickstart: train a federated CNN with FedCA and compare against FedAvg.
//
// Demonstrates the one-call experiment API:
//   1. describe the workload (model, clients, non-IID alpha, K, batch),
//   2. build a scheme from the factory,
//   3. run_experiment() — returns the accuracy-vs-virtual-time curve and
//      per-round behaviour.
//
// Usage: quickstart [key=value ...]
//   e.g. quickstart model=cnn clients=16 rounds=30 target=0.5 seed=7
//   scheme=fedavg,fedca picks which schemes run (comma-separated).
#include <iostream>
#include <sstream>
#include <vector>

#include "core/factory.hpp"
#include "fl/experiment.hpp"
#include "util/config.hpp"
#include "util/table.hpp"

using namespace fedca;

int main(int argc, char** argv) {
  util::Config config = util::Config::from_args(argc, argv);

  fl::ExperimentOptions options;
  options.model = nn::parse_model_kind(config.get_string("model", "cnn"));
  options.num_clients = static_cast<std::size_t>(config.get_int("clients", 12));
  options.local_iterations = static_cast<std::size_t>(config.get_int("k", 25));
  options.batch_size = static_cast<std::size_t>(config.get_int("batch", 10));
  options.dirichlet_alpha = config.get_double("alpha", 0.1);
  options.train_samples = static_cast<std::size_t>(config.get_int("samples", 1500));
  options.test_samples = static_cast<std::size_t>(config.get_int("test_samples", 256));
  options.data_spec.noise_stddev =
      config.get_double("noise", options.data_spec.noise_stddev);
  options.max_rounds = static_cast<std::size_t>(config.get_int("rounds", 25));
  options.target_accuracy = config.get_double("target", 0.0);
  options.optimizer.learning_rate = config.get_double("lr", 0.05);
  options.seed = static_cast<std::uint64_t>(config.get_int("seed", 42));
  // trace=/metrics=/report= (or FEDCA_TRACE/FEDCA_METRICS/FEDCA_REPORT)
  // write a Chrome-trace timeline / metrics snapshot / per-round JSONL
  // report covering both schemes' runs.
  options.trace_path = config.get_string("trace", "");
  options.metrics_path = config.get_string("metrics", "");
  options.report_path = config.get_string("report", "");
  // Profile early and often at quickstart scale so FedCA's knowledge kicks
  // in within a short demo run.
  config.set("fedca_period", config.get_string("fedca_period", "5"));

  util::print_section(std::cout, "FedCA quickstart", config.dump());

  std::vector<std::string> scheme_names;
  {
    std::istringstream csv(config.get_string("scheme", "fedavg,fedca"));
    std::string name;
    while (std::getline(csv, name, ',')) {
      if (!name.empty()) scheme_names.push_back(name);
    }
  }

  util::Table table({"scheme", "rounds", "virtual time (s)", "final accuracy",
                     "mean round (s)", "early stops", "eager layers"});
  for (const std::string& scheme_name : scheme_names) {
    auto scheme = core::make_scheme(scheme_name, config, options.seed);
    const fl::ExperimentResult result = fl::run_experiment(options, *scheme);
    table.add_row({result.scheme_name, std::to_string(result.rounds.size()),
                   util::Table::fmt(result.total_time, 1),
                   util::Table::fmt(result.final_accuracy, 3),
                   util::Table::fmt(result.mean_round_seconds, 2),
                   std::to_string(result.early_stop_iterations().size()),
                   std::to_string(result.eager_iterations(false).size())});
  }
  table.print(std::cout);

  std::cout << "\nFedCA trims straggler iterations (early stops) and overlaps\n"
               "communication of stabilized layers (eager transmissions), so its\n"
               "virtual-time-per-round is lower at comparable accuracy.\n";
  return 0;
}
