// Layer-convergence scenario: driving FedCA's core primitives by hand.
//
// Uses the public core API directly — no FL engine — to show how a
// downstream system would:
//   1. profile statistical-progress curves with periodical sampling,
//   2. read per-layer curves to spot early-converged layers (Eq. 5),
//   3. score iterations with the net-benefit utility (Eqs. 2-4),
//   4. run the error-feedback retransmission check (Eq. 6).
//
// Usage: layer_convergence [key=value ...]
#include <iostream>

#include "core/eager.hpp"
#include "core/sampling_profiler.hpp"
#include "core/utility.hpp"
#include "tensor/ops.hpp"
#include "data/loader.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "nn/sgd.hpp"
#include "util/config.hpp"
#include "util/table.hpp"

using namespace fedca;

int main(int argc, char** argv) {
  util::Config config = util::Config::from_args(argc, argv);
  const std::size_t iterations = static_cast<std::size_t>(config.get_int("k", 30));

  // One client's local world: a model replica and a non-IID-ish shard.
  util::Rng model_rng(1);
  nn::Classifier model = nn::build_model(nn::ModelKind::kCnn, model_rng);
  data::SyntheticSpec spec;
  spec.noise_stddev = config.get_double("noise", 1.0);
  util::Rng task_rng(2);
  data::SyntheticTask task(nn::ModelKind::kCnn, spec, task_rng);
  util::Rng sample_rng(3);
  const data::Dataset shard = task.sample(200, sample_rng);
  data::BatchLoader loader(&shard, 10, util::Rng(4));
  nn::SgdOptimizer optimizer(model.parameters(), {0.05, 0.0, 0.0});

  // 1. Profile one anchor round with the periodical-sampling profiler.
  core::SamplingProfiler profiler(core::ProfilerOptions{}, util::Rng(5));
  const nn::ModelState round_start = model.state();
  profiler.begin_round(0, round_start);
  for (std::size_t it = 0; it < iterations; ++it) {
    const data::Batch batch = loader.next();
    model.compute_gradients(batch.inputs, batch.labels);
    optimizer.step();
    profiler.record_iteration(model.backbone());
  }
  profiler.finish_round();

  std::cout << "Profiled " << profiler.layer_curves().size() << " layers from "
            << profiler.sampled_param_count() << " sampled scalars ("
            << profiler.profiling_bytes(iterations) / 1024 << " KiB for the round)\n";

  // 2. When does each layer stabilize (P >= T_e)?
  core::EagerOptions eager;
  util::Table stab({"layer", "P @ 25%", "P @ 50%", "P @ 75%",
                    "stabilizes at iteration (T_e = 0.95)"});
  const nn::ModelState final_state = model.state();
  const auto& names = round_start.names;
  for (std::size_t l = 0; l < profiler.layer_curves().size(); ++l) {
    const core::ProgressCurve& curve = profiler.layer_curves()[l];
    std::size_t stabilize_at = 0;
    for (std::size_t it = 0; it < curve.size(); ++it) {
      if (curve[it] >= eager.stabilize_threshold) {
        stabilize_at = it + 1;
        break;
      }
    }
    stab.add_row({names[l], util::Table::fmt(core::curve_at(curve, iterations / 4), 3),
                  util::Table::fmt(core::curve_at(curve, iterations / 2), 3),
                  util::Table::fmt(core::curve_at(curve, 3 * iterations / 4), 3),
                  stabilize_at == 0 ? "never" : std::to_string(stabilize_at)});
  }
  util::print_section(std::cout, "Per-layer statistical progress");
  stab.print(std::cout);

  // 3. Net-benefit scoring of each iteration under a tight deadline.
  const double deadline = config.get_double("deadline", 1.5);  // seconds
  const double per_iter_seconds = deadline / static_cast<double>(iterations) * 1.4;
  core::EarlyStopOptions early;
  util::Table utility({"iteration", "benefit (Eq. 2)", "cost (Eq. 3)",
                       "net (Eq. 4)", "decision"});
  bool stopped = false;
  for (std::size_t tau = 1; tau <= iterations && !stopped; ++tau) {
    const double elapsed = per_iter_seconds * static_cast<double>(tau);
    const double b = core::marginal_benefit(profiler.model_curve(), tau + 1, iterations);
    const double c = core::marginal_cost(elapsed, deadline, early.beta);
    stopped = core::should_stop_after(profiler.model_curve(), tau, iterations, elapsed,
                                      deadline, early);
    if (tau % 3 == 0 || stopped) {
      utility.add_row({std::to_string(tau), util::Table::fmt(b, 4),
                       util::Table::fmt(c, 4), util::Table::fmt(b - c, 4),
                       stopped ? "STOP" : "continue"});
    }
  }
  util::print_section(std::cout, "Utility-guided early stopping (client is 40% "
                                 "slower than the deadline allows)");
  utility.print(std::cout);

  // 4. Error feedback: compare a mid-round eager value with the final one.
  const nn::ModelState final_update = nn::state_sub(final_state, round_start);
  std::cout << "\nError-feedback check (Eq. 6, T_r = "
            << eager.retransmit_threshold << "):\n";
  for (std::size_t l = 0; l < final_update.tensors.size(); ++l) {
    // Fake an eager value: half of the final update (aligned -> cos = 1).
    tensor::Tensor eager_value = final_update.tensors[l];
    tensor::scale(0.5f, eager_value.data());
    const bool retrans = core::needs_retransmission(final_update.tensors[l],
                                                    eager_value, eager);
    if (l < 3) {
      std::cout << "  " << names[l] << ": aligned eager value -> "
                << (retrans ? "retransmit" : "keep") << "\n";
    }
  }
  std::cout << "(orthogonal or zero eager values would fail the cosine test and "
               "be retransmitted)\n";
  return 0;
}
