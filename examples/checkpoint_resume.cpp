// Checkpoint / resume: persist the global model mid-experiment and
// continue training from it later — the operational pattern a long
// federated run needs (the paper's WRN runs span hundreds of hours).
//
// Usage: checkpoint_resume [key=value ...]
#include <cstdio>
#include <iostream>

#include "core/factory.hpp"
#include "fl/experiment.hpp"
#include "nn/serialize.hpp"
#include "util/config.hpp"
#include "util/table.hpp"

using namespace fedca;

int main(int argc, char** argv) {
  util::Config config = util::Config::from_args(argc, argv);
  const std::string path = config.get_string("checkpoint", "/tmp/fedca_quickstart.ckpt");

  fl::ExperimentOptions options;
  options.model = nn::ModelKind::kCnn;
  options.num_clients = static_cast<std::size_t>(config.get_int("clients", 8));
  options.local_iterations = static_cast<std::size_t>(config.get_int("k", 15));
  options.batch_size = 10;
  options.train_samples = static_cast<std::size_t>(config.get_int("samples", 800));
  options.test_samples = 192;
  options.data_spec.noise_stddev = config.get_double("noise", 1.0);
  options.seed = static_cast<std::uint64_t>(config.get_int("seed", 9));
  const std::size_t phase1 = static_cast<std::size_t>(config.get_int("phase1_rounds", 6));
  const std::size_t phase2 = static_cast<std::size_t>(config.get_int("phase2_rounds", 6));

  // Phase 1: train, checkpoint the global model, record accuracy.
  fl::FedAvgScheme scheme1;
  fl::ExperimentSetup setup = fl::make_setup(options, scheme1);
  for (std::size_t r = 0; r < phase1; ++r) setup.engine->run_round();
  const auto eval1 = fl::evaluate_global(setup);
  nn::save_state_file(setup.engine->global_state(), path);
  std::cout << "phase 1: " << phase1 << " rounds -> accuracy "
            << util::Table::fmt(eval1.accuracy, 3) << "; checkpoint saved to " << path
            << "\n";

  // Phase 2 (a "new process"): rebuild the world, load the checkpoint into
  // the fresh model, and keep training. Data/cluster seeds match, so this
  // is a faithful resume of the same federation.
  fl::FedAvgScheme scheme2;
  fl::ExperimentSetup resumed = fl::make_setup(options, scheme2);
  resumed.model->load(nn::load_state_file(path));
  // The engine snapshots global state at construction; rebuild it on top
  // of the restored weights by constructing a fresh engine.
  fl::RoundEngineOptions engine_options;
  engine_options.local_iterations = options.local_iterations;
  engine_options.batch_size = options.batch_size;
  engine_options.optimizer = options.optimizer;
  fl::RoundEngine engine(resumed.model.get(), resumed.cluster.get(), resumed.shards,
                         &scheme2, engine_options, util::Rng(options.seed ^ 0xC0FFEE));
  for (std::size_t r = 0; r < phase2; ++r) engine.run_round();
  engine.load_global_into_model();
  const data::Batch test = resumed.test_set.as_batch();
  const auto eval2 = resumed.model->evaluate(test.inputs, test.labels);
  std::cout << "phase 2 (resumed): +" << phase2 << " rounds -> accuracy "
            << util::Table::fmt(eval2.accuracy, 3) << "\n";

  if (eval2.accuracy + 0.02 < eval1.accuracy) {
    std::cout << "WARNING: resumed run regressed; checkpoint restore may be broken\n";
    return 1;
  }
  std::cout << "resume OK: training continued from the restored global model\n";
  std::remove(path.c_str());
  return 0;
}
