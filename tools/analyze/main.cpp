// fedca_analyze — semantic whole-tree analyzer for the FedCA reproduction.
//
// Third tier of the static-analysis stack (clang -Wthread-safety, the
// clang-tidy gate, and this): a C++17 lexer over the whole tree builds an
// include/layering DAG checked against tools/analyze/layers.spec, a
// lock-order graph from util::MutexLock scopes and FEDCA_* annotations,
// and scope-aware determinism/seam rules the regex linter
// (tools/lint_fedca.py) cannot express. Zero external dependencies; runs
// in well under a second over the ~200-file tree.
//
// Usage:
//   fedca_analyze --root DIR [--build DIR] [--spec FILE] [--json]
//                 [--list-rules]
//
//   --root DIR    repo root to analyze (walks src/, bench/, examples/)
//   --build DIR   build tree; DIR/compile_commands.json is REQUIRED when
//                 this flag is given (exit 2 if missing) and contributes
//                 any first-party TU the walk would miss (generated files)
//   --spec FILE   layering spec; omitted => layering checks are skipped
//                 (fixture trees), unreadable => exit 2
//   --json        machine-readable findings (JSON array of
//                 {rule, file, line, message}) instead of text
//   --list-rules  print the rule names and exit
//
// Exit codes: 0 clean, 1 findings, 2 usage/configuration error.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/layering.hpp"
#include "analysis/source.hpp"

namespace fs = std::filesystem;
using namespace fedca::analysis;

namespace {

bool has_cxx_ext(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

// Repo-root-relative path with '/' separators, or "" when outside root.
std::string rel_to_root(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(p, root, ec);
  if (ec || rel.empty()) return std::string();
  std::string s = rel.generic_string();
  if (s.rfind("..", 0) == 0) return std::string();
  return s;
}

// Minimal extraction of "file" (and "directory") values from
// compile_commands.json — the format cmake emits is a flat array of
// objects with string values, so a targeted scan beats a JSON library
// (which the zero-deps constraint rules out anyway).
std::vector<std::string> compile_db_files(const std::string& text) {
  std::vector<std::string> files;
  std::string directory;
  std::size_t i = 0;
  auto read_string = [&](std::size_t at, std::string& out) -> std::size_t {
    out.clear();
    std::size_t j = at;
    while (j < text.size() && text[j] != '"') {
      if (text[j] == '\\' && j + 1 < text.size()) {
        ++j;
        // Only the escapes cmake actually emits in paths.
        if (text[j] == '\\' || text[j] == '"' || text[j] == '/') {
          out += text[j];
        } else {
          out += '\\';
          out += text[j];
        }
      } else {
        out += text[j];
      }
      ++j;
    }
    return j + 1;
  };
  while (i < text.size()) {
    const std::size_t key = text.find('"', i);
    if (key == std::string::npos) break;
    std::string name;
    std::size_t after = read_string(key + 1, name);
    if (name != "file" && name != "directory") {
      i = after;
      continue;
    }
    const std::size_t colon = text.find(':', after);
    if (colon == std::string::npos) break;
    const std::size_t open = text.find('"', colon);
    if (open == std::string::npos) break;
    std::string value;
    after = read_string(open + 1, value);
    if (name == "directory") {
      directory = value;
    } else if (!value.empty()) {
      if (value[0] != '/' && !directory.empty()) {
        value = directory + "/" + value;
      }
      files.push_back(value);
    }
    i = after;
  }
  return files;
}

int usage_error(const std::string& message) {
  std::cerr << "fedca_analyze: " << message << "\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root_arg = ".";
  std::string build_arg;
  std::string spec_arg;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--root") {
      const char* v = next();
      if (v == nullptr) return usage_error("--root needs a directory");
      root_arg = v;
    } else if (arg == "--build") {
      const char* v = next();
      if (v == nullptr) return usage_error("--build needs a directory");
      build_arg = v;
    } else if (arg == "--spec") {
      const char* v = next();
      if (v == nullptr) return usage_error("--spec needs a file");
      spec_arg = v;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      for (const std::string& rule : all_rules()) std::cout << rule << "\n";
      return 0;
    } else {
      return usage_error("unknown argument '" + arg + "' (see header comment)");
    }
  }

  std::error_code ec;
  const fs::path root = fs::canonical(root_arg, ec);
  if (ec) return usage_error("no such root directory: " + root_arg);

  // File set: walk the first-party trees, then fold in compile-database
  // TUs (catches generated sources the walk cannot know about).
  std::set<std::string> rel_paths;
  for (const char* dir : {"src", "bench", "examples"}) {
    const fs::path top = root / dir;
    if (!fs::is_directory(top)) continue;
    for (fs::recursive_directory_iterator it(top), end; it != end; ++it) {
      if (it->is_regular_file() && has_cxx_ext(it->path())) {
        const std::string rel = rel_to_root(it->path(), root);
        if (!rel.empty()) rel_paths.insert(rel);
      }
    }
  }
  if (!build_arg.empty()) {
    const fs::path db_path = fs::path(build_arg) / "compile_commands.json";
    std::string db_text;
    if (!read_file(db_path, db_text)) {
      return usage_error(
          "no " + db_path.string() +
          " — configure with cmake -B build -S . "
          "(CMAKE_EXPORT_COMPILE_COMMANDS is on by default)");
    }
    for (const std::string& file : compile_db_files(db_text)) {
      const fs::path p = fs::weakly_canonical(file, ec);
      if (ec) continue;
      const std::string rel = rel_to_root(p, root);
      if (rel.empty() || !has_cxx_ext(p)) continue;
      if (rel.rfind("src/", 0) == 0 || rel.rfind("bench/", 0) == 0 ||
          rel.rfind("examples/", 0) == 0) {
        rel_paths.insert(rel);
      }
    }
  }

  std::vector<Finding> findings;

  LayerSpec spec;
  bool have_spec = false;
  if (!spec_arg.empty()) {
    std::string spec_text;
    if (!read_file(spec_arg, spec_text)) {
      return usage_error("cannot read spec file: " + spec_arg);
    }
    const std::string spec_rel = [&] {
      const fs::path p = fs::weakly_canonical(spec_arg, ec);
      const std::string rel = ec ? std::string() : rel_to_root(p, root);
      return rel.empty() ? spec_arg : rel;
    }();
    have_spec = spec.parse(spec_text, spec_rel, findings);
    if (!have_spec) {
      return usage_error("spec file declares no layers: " + spec_arg);
    }
  }

  std::vector<SourceFile> files;
  files.reserve(rel_paths.size());
  for (const std::string& rel : rel_paths) {
    std::string text;
    if (!read_file(root / rel, text)) {
      add_finding(findings, "io", rel, 0, "unreadable file");
      continue;
    }
    SourceFile f;
    f.rel_path = rel;
    lex_source(text, f);
    files.push_back(std::move(f));
  }

  std::vector<Finding> pass_findings =
      run_passes(files, have_spec ? &spec : nullptr);
  findings.insert(findings.end(),
                  std::make_move_iterator(pass_findings.begin()),
                  std::make_move_iterator(pass_findings.end()));
  apply_waivers(files, findings);
  sort_findings(findings);

  if (json) {
    std::cout << to_json(findings);
  } else {
    for (const Finding& f : findings) std::cout << to_text(f) << "\n";
    if (findings.empty()) {
      std::cout << "fedca_analyze: OK (" << files.size() << " files)\n";
    } else {
      std::cerr << "fedca_analyze: FAIL: " << findings.size()
                << " finding(s)\n";
    }
  }
  return findings.empty() ? 0 : 1;
}
