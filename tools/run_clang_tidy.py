#!/usr/bin/env python3
"""clang-tidy gate for the FedCA reproduction: zero NEW findings.

Runs clang-tidy (config: .clang-tidy at the repo root) over every
first-party translation unit in the compilation database and compares the
normalized findings against the committed baseline
(tools/clang_tidy_baseline.txt). The gate fails only on findings that are
not in the baseline, so the bar ratchets: existing debt is frozen, new debt
is rejected. Burn-downs shrink the baseline; it must never grow.

Finding normalization is path + check only (no line numbers), so unrelated
edits that shift lines do not churn the baseline.

Usage:
  run_clang_tidy.py [--build-dir DIR] [--update-baseline] [--jobs N]

Environment:
  CLANG_TIDY  explicit clang-tidy binary (default: first of clang-tidy,
              clang-tidy-19 ... clang-tidy-14 on PATH)

Exit codes:
  0  clean (or clang-tidy unavailable — prints SKIP so CI shows the gap)
  1  new findings not in the baseline
  2  usage/configuration error (no compile_commands.json, bad build dir)
"""

import argparse
import json
import multiprocessing
import os
import re
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_PATH = os.path.join(REPO_ROOT, "tools", "clang_tidy_baseline.txt")

# First-party code only: system headers and gtest are not ours to lint.
FIRST_PARTY = ("src/", "bench/", "examples/", "tests/")

# "path:line:col: warning: message [check-name]"
FINDING_RE = re.compile(
    r"^(?P<path>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+):\s+"
    r"(?:warning|error):\s+(?P<msg>.*?)\s+\[(?P<check>[\w.,-]+)\]\s*$"
)


def find_clang_tidy():
    env = os.environ.get("CLANG_TIDY")
    if env:
        return env if shutil.which(env) else None
    candidates = ["clang-tidy"] + [f"clang-tidy-{v}" for v in range(19, 13, -1)]
    for c in candidates:
        if shutil.which(c):
            return c
    return None


def load_compile_commands(build_dir):
    path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(path):
        print(
            f"run_clang_tidy: no {path} — configure with "
            "cmake -B build -S . (CMAKE_EXPORT_COMPILE_COMMANDS is on by default)",
            file=sys.stderr,
        )
        sys.exit(2)
    with open(path, "r", encoding="utf-8") as f:
        db = json.load(f)
    files = []
    for entry in db:
        src = os.path.abspath(os.path.join(entry["directory"], entry["file"]))
        rel = os.path.relpath(src, REPO_ROOT)
        if rel.replace(os.sep, "/").startswith(FIRST_PARTY):
            files.append(src)
    return sorted(set(files))


def normalize(raw_line):
    """One finding line -> stable 'relpath [check]' key, or None."""
    m = FINDING_RE.match(raw_line)
    if not m:
        return None
    path = os.path.abspath(m.group("path"))
    try:
        rel = os.path.relpath(path, REPO_ROOT).replace(os.sep, "/")
    except ValueError:
        rel = m.group("path")
    if rel.startswith(".."):
        return None  # outside the repo (system header) — not ours
    return f"{rel} [{m.group('check')}]"


def run_tidy(binary, files, build_dir, jobs):
    findings = set()
    # Batch to keep command lines short while amortizing process startup.
    batch = max(1, len(files) // max(1, jobs * 4)) if files else 1
    procs = []

    def drain(block):
        while procs and (block or len(procs) >= jobs):
            p, batch_files = procs.pop(0)
            out, _ = p.communicate()
            for line in out.splitlines():
                key = normalize(line)
                if key:
                    findings.add(key)

    for i in range(0, len(files), batch):
        chunk = files[i : i + batch]
        cmd = [binary, "-p", build_dir, "--quiet"] + chunk
        procs.append(
            (
                subprocess.Popen(
                    cmd,
                    stdout=subprocess.PIPE,
                    stderr=subprocess.DEVNULL,
                    text=True,
                    cwd=REPO_ROOT,
                ),
                chunk,
            )
        )
        drain(block=False)
    drain(block=True)
    return findings


def load_baseline():
    if not os.path.isfile(BASELINE_PATH):
        return set()
    with open(BASELINE_PATH, "r", encoding="utf-8") as f:
        return {
            line.strip()
            for line in f
            if line.strip() and not line.startswith("#")
        }


def write_baseline(findings):
    with open(BASELINE_PATH, "w", encoding="utf-8") as f:
        f.write(
            "# clang-tidy suppression baseline — frozen debt, never grows.\n"
            "# One 'relpath [check]' per line; regenerate with\n"
            "#   tools/run_clang_tidy.py --update-baseline\n"
            "# only when burning findings DOWN.\n"
        )
        for key in sorted(findings):
            f.write(key + "\n")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default=os.path.join(REPO_ROOT, "build"),
                        help="build tree holding compile_commands.json")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from current findings")
    parser.add_argument("--jobs", type=int,
                        default=max(1, multiprocessing.cpu_count() - 1))
    args = parser.parse_args()

    binary = find_clang_tidy()
    if binary is None:
        # Not an error: the gcc-only container runs the invariant linter and
        # tests but cannot run this gate. Print loudly so the skip is visible.
        print("run_clang_tidy: SKIP: clang-tidy not found "
              "(set CLANG_TIDY or install clang-tidy)")
        return 0

    files = load_compile_commands(os.path.abspath(args.build_dir))
    if not files:
        print("run_clang_tidy: no first-party files in compile_commands.json",
              file=sys.stderr)
        return 2

    findings = run_tidy(binary, files, os.path.abspath(args.build_dir),
                        args.jobs)

    if args.update_baseline:
        write_baseline(findings)
        print(f"run_clang_tidy: baseline rewritten with {len(findings)} entries")
        return 0

    baseline = load_baseline()
    new = sorted(findings - baseline)
    stale = sorted(baseline - findings)
    if stale:
        print(f"run_clang_tidy: note: {len(stale)} baseline entries no longer "
              "fire — shrink tools/clang_tidy_baseline.txt:")
        for key in stale:
            print(f"  stale: {key}")
    if new:
        print(f"run_clang_tidy: FAIL: {len(new)} new finding(s) not in baseline:",
              file=sys.stderr)
        for key in new:
            print(f"  new: {key}", file=sys.stderr)
        return 1
    print(f"run_clang_tidy: OK: {len(findings)} finding(s), all baselined "
          f"({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
