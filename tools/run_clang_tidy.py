#!/usr/bin/env python3
"""clang-tidy gate for the FedCA reproduction: zero NEW findings.

Runs clang-tidy (config: .clang-tidy at the repo root) over every
first-party translation unit in the compilation database and compares the
normalized findings against the committed baseline
(tools/clang_tidy_baseline.txt). The gate fails only on findings that are
not in the baseline, so the bar ratchets: existing debt is frozen, new debt
is rejected. Burn-downs shrink the baseline; it must never grow.

Finding normalization is path + check only (no line numbers), so unrelated
edits that shift lines do not churn the baseline.

Usage:
  run_clang_tidy.py [--build-dir DIR] [--update-baseline] [--jobs N]
                    [--baseline FILE]

Baseline hygiene is checked before anything else — an entry naming a file
that no longer exists (or a malformed entry) fails the gate even when
clang-tidy itself is not installed, so dead debt cannot linger.

Environment:
  CLANG_TIDY  explicit clang-tidy binary (default: first of clang-tidy,
              clang-tidy-19 ... clang-tidy-14 on PATH)

Exit codes:
  0  clean (or clang-tidy unavailable — prints SKIP so CI shows the gap)
  1  new findings not in the baseline
  2  usage/configuration error (no compile_commands.json, bad build dir)
"""

import argparse
import json
import multiprocessing
import os
import re
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_PATH = os.path.join(REPO_ROOT, "tools", "clang_tidy_baseline.txt")

# First-party code only: system headers and gtest are not ours to lint.
FIRST_PARTY = ("src/", "bench/", "examples/", "tests/")

# "path:line:col: warning: message [check-name]"
FINDING_RE = re.compile(
    r"^(?P<path>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+):\s+"
    r"(?:warning|error):\s+(?P<msg>.*?)\s+\[(?P<check>[\w.,-]+)\]\s*$"
)


def find_clang_tidy():
    env = os.environ.get("CLANG_TIDY")
    if env:
        return env if shutil.which(env) else None
    candidates = ["clang-tidy"] + [f"clang-tidy-{v}" for v in range(19, 13, -1)]
    for c in candidates:
        if shutil.which(c):
            return c
    return None


def load_compile_commands(build_dir):
    path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(path):
        print(
            f"run_clang_tidy: no {path} — configure with "
            "cmake -B build -S . (CMAKE_EXPORT_COMPILE_COMMANDS is on by default)",
            file=sys.stderr,
        )
        sys.exit(2)
    with open(path, "r", encoding="utf-8") as f:
        db = json.load(f)
    files = []
    for entry in db:
        src = os.path.abspath(os.path.join(entry["directory"], entry["file"]))
        rel = os.path.relpath(src, REPO_ROOT)
        if rel.replace(os.sep, "/").startswith(FIRST_PARTY):
            files.append(src)
    return sorted(set(files))


def normalize(raw_line):
    """One finding line -> stable 'relpath [check]' key, or None."""
    m = FINDING_RE.match(raw_line)
    if not m:
        return None
    path = os.path.abspath(m.group("path"))
    try:
        rel = os.path.relpath(path, REPO_ROOT).replace(os.sep, "/")
    except ValueError:
        rel = m.group("path")
    if rel.startswith(".."):
        return None  # outside the repo (system header) — not ours
    return f"{rel} [{m.group('check')}]"


def run_tidy(binary, files, build_dir, jobs):
    findings = set()
    # Batch to keep command lines short while amortizing process startup.
    batch = max(1, len(files) // max(1, jobs * 4)) if files else 1
    procs = []

    def drain(block):
        while procs and (block or len(procs) >= jobs):
            p, batch_files = procs.pop(0)
            out, _ = p.communicate()
            for line in out.splitlines():
                key = normalize(line)
                if key:
                    findings.add(key)

    for i in range(0, len(files), batch):
        chunk = files[i : i + batch]
        cmd = [binary, "-p", build_dir, "--quiet"] + chunk
        procs.append(
            (
                subprocess.Popen(
                    cmd,
                    stdout=subprocess.PIPE,
                    stderr=subprocess.DEVNULL,
                    text=True,
                    cwd=REPO_ROOT,
                ),
                chunk,
            )
        )
        drain(block=False)
    drain(block=True)
    return findings


def load_baseline(path):
    if not os.path.isfile(path):
        return set()
    with open(path, "r", encoding="utf-8") as f:
        return {
            line.strip()
            for line in f
            if line.strip() and not line.startswith("#")
        }


BASELINE_ENTRY_RE = re.compile(r"^(?P<path>\S+)\s+\[(?P<check>[\w.,-]+)\]$")


def baseline_dead_files(baseline):
    """Entries whose file no longer exists: dead debt that must be pruned.

    Runs even when clang-tidy itself is unavailable — a deleted file can
    never burn its entry down, so leaving it rots the ratchet silently.
    Malformed entries are reported the same way (they can never match a
    normalized finding either).
    """
    dead = []
    for entry in sorted(baseline):
        m = BASELINE_ENTRY_RE.match(entry)
        if not m or not os.path.isfile(os.path.join(REPO_ROOT, m.group("path"))):
            dead.append(entry)
    return dead


def write_baseline(findings, path):
    with open(path, "w", encoding="utf-8") as f:
        f.write(
            "# clang-tidy suppression baseline — frozen debt, never grows.\n"
            "# One 'relpath [check]' per line; regenerate with\n"
            "#   tools/run_clang_tidy.py --update-baseline\n"
            "# only when burning findings DOWN.\n"
        )
        for key in sorted(findings):
            f.write(key + "\n")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default=os.path.join(REPO_ROOT, "build"),
                        help="build tree holding compile_commands.json")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from current findings")
    parser.add_argument("--jobs", type=int,
                        default=max(1, multiprocessing.cpu_count() - 1))
    parser.add_argument("--baseline", default=BASELINE_PATH,
                        help="baseline file (default: tools/clang_tidy_baseline.txt)")
    args = parser.parse_args()

    # Baseline hygiene gates BEFORE the clang-tidy-missing SKIP: dead
    # entries are detectable without the binary and must not survive it.
    baseline = load_baseline(args.baseline)
    dead = baseline_dead_files(baseline)
    if dead:
        print(f"run_clang_tidy: FAIL: {len(dead)} baseline entr"
              f"{'y names' if len(dead) == 1 else 'ies name'} missing or "
              "malformed files — prune them:", file=sys.stderr)
        for entry in dead:
            print(f"  dead: {entry}", file=sys.stderr)
        return 1

    binary = find_clang_tidy()
    if binary is None:
        # Not an error: the gcc-only container runs the invariant linter and
        # tests but cannot run this gate. Print loudly so the skip is visible.
        print("run_clang_tidy: SKIP: clang-tidy not found "
              "(set CLANG_TIDY or install clang-tidy)")
        return 0

    files = load_compile_commands(os.path.abspath(args.build_dir))
    if not files:
        print("run_clang_tidy: no first-party files in compile_commands.json",
              file=sys.stderr)
        return 2

    findings = run_tidy(binary, files, os.path.abspath(args.build_dir),
                        args.jobs)

    if args.update_baseline:
        write_baseline(findings, args.baseline)
        print(f"run_clang_tidy: baseline rewritten with {len(findings)} entries")
        return 0

    new = sorted(findings - baseline)
    stale = sorted(baseline - findings)
    if stale:
        print(f"run_clang_tidy: note: {len(stale)} baseline entries no longer "
              "fire — shrink tools/clang_tidy_baseline.txt:")
        for key in stale:
            print(f"  stale: {key}")
    if new:
        print(f"run_clang_tidy: FAIL: {len(new)} new finding(s) not in baseline:",
              file=sys.stderr)
        for key in new:
            print(f"  new: {key}", file=sys.stderr)
        return 1
    print(f"run_clang_tidy: OK: {len(findings)} finding(s), all baselined "
          f"({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
