#!/usr/bin/env python3
"""Kernel benchmark runner: measures the compute-layer microbenches and
writes BENCH_kernels.json (checked in at the repo root) with before/after
numbers.

The "before" column is the frozen pre-optimization baseline measured on the
reference container (single-core Xeon 2.10 GHz, gcc 12, RelWithDebInfo)
right before the blocked-GEMM/parallel-engine change landed; BM_GemmRef
re-measures the retained naive kernel so the comparison stays honest on
other hosts.

Provenance: the binary stamps fedca_build_type and fedca_simd_tier into
the benchmark context (recorded in the output JSON). A debug build is
refused with exit 2 — checked-in BENCH numbers must come from an
optimized build. Usage:

    python3 tools/bench_kernels.py [--build build] [--out BENCH_kernels.json]
"""
import argparse
import json
import subprocess
import sys
from pathlib import Path

# Frozen pre-PR measurements (ns) on the reference container. BM_Gemm was
# the naive triple loop then — identical code to today's BM_GemmRef.
BASELINE_NS = {
    "BM_Gemm/32": 5594,
    "BM_Gemm/64": 36442,
    "BM_Gemm/128": 314522,
    "BM_StatisticalProgress/1024": 3586,
    "BM_StatisticalProgress/65536": 224066,
    "BM_CnnTrainingIteration": 3910746,
}

FILTER = ("BM_(Gemm|GemmNT|GemmTN|GemmRef|GemmParallel|Axpy|Dot|L2Norm|Scale|"
          "BiasAdd|RowSum|ConvForward|ConvBackward|StatisticalProgress|"
          "CnnTrainingIteration|RoundThroughput)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build", default="build", help="CMake build directory")
    parser.add_argument("--out", default="BENCH_kernels.json", help="output path")
    parser.add_argument("--min-time", default="0.2",
                        help="benchmark_min_time (seconds, no unit suffix)")
    args = parser.parse_args()

    root = Path(__file__).resolve().parent.parent
    binary = root / args.build / "bench" / "micro_kernels"
    if not binary.exists():
        print(f"error: {binary} not built", file=sys.stderr)
        return 1

    cmd = [
        str(binary),
        f"--benchmark_filter={FILTER}",
        "--benchmark_format=json",
        # NOTE: this google-benchmark build rejects a "s" unit suffix here.
        f"--benchmark_min_time={args.min_time}",
    ]
    print("+ " + " ".join(cmd), file=sys.stderr)
    run = subprocess.run(cmd, capture_output=True, text=True)
    if run.returncode != 0:
        sys.stderr.write(run.stderr)
        return run.returncode
    data = json.loads(run.stdout)

    context = data.get("context", {})
    build_type = context.get("fedca_build_type")
    if build_type != "release":
        print(
            f"error: refusing to record numbers from a "
            f"'{build_type}' build — rebuild with NDEBUG "
            "(Release/RelWithDebInfo) and rerun",
            file=sys.stderr,
        )
        return 2
    print(f"dispatch tier: {context.get('fedca_simd_tier')}", file=sys.stderr)

    after = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench["name"]
        after[name] = {
            "real_time_ns": round(bench["real_time"], 1),
            "items_per_second": bench.get("items_per_second"),
        }

    speedups = {}
    for name, before_ns in BASELINE_NS.items():
        entry = after.get(name)
        if entry and entry["real_time_ns"] > 0:
            speedups[name] = round(before_ns / entry["real_time_ns"], 2)
    # The live naive-vs-blocked ratio on THIS host (BM_GemmRef is the old
    # BM_Gemm implementation).
    for n in (32, 64, 128):
        ref = after.get(f"BM_GemmRef/{n}")
        opt = after.get(f"BM_Gemm/{n}")
        if ref and opt and opt["real_time_ns"] > 0:
            speedups[f"ref_vs_blocked/{n}"] = round(
                ref["real_time_ns"] / opt["real_time_ns"], 2)

    out = {
        "description": "Kernel microbenches: frozen pre-optimization baseline "
                       "(before_ns) vs current build (after).",
        "context": data.get("context", {}),
        "before_ns": BASELINE_NS,
        "after": after,
        "speedup": speedups,
    }
    out_path = root / args.out
    out_path.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path}", file=sys.stderr)

    gemm128 = speedups.get("BM_Gemm/128")
    if gemm128 is not None:
        print(f"BM_Gemm/128 speedup vs frozen baseline: {gemm128}x",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
