#!/usr/bin/env python3
"""Validate, summarize, and digest a fedca run_report.jsonl file.

The round engines append one JSON object per line ("type":"round" with an
embedded per-client outcome array, or "type":"async_update" for the async
engine). Everything is measured on the virtual clock, so a report is
bit-reproducible for a given seed — this script's sha256 digest is stable
across machines and worker counts, which is what the committed goldens
under tests/golden/ rely on.

Checks:
  * every line parses as a JSON object with a known "type";
  * round lines: participants == len(clients), the outcome tallies
    (collected/shed/timed_out/crashed/dropout/link_outage) sum to the
    participant count and match the per-client outcome strings;
  * per-client outcomes come from the legal vocabulary, weights are
    non-negative, and collected weights sum to ~1 when anything was
    collected;
  * straggler flags match the reported straggler count, and every
    straggler's duration >= straggler_threshold;
  * eager byte accounting: per-client eager_bytes is non-negative and
    never exceeds bytes_sent, and the round-level eager_bytes matches the
    sum over clients (relative tolerance — values are serialized at %.10g,
    so the stored sum and a recomputed sum differ in the last digit);
  * round indices strictly increase within a run segment (a reset to 0
    starts a new segment — one file may hold several back-to-back runs);
    same for async update indices; lost async updates carry weight 0 and
    a loss outcome.

Usage:
  report.py REPORT.jsonl [--summary] [--digest] [--golden FILE]

--golden FILE compares sha256(report bytes) against the hex digest stored
in FILE (first whitespace-separated token), failing with exit 1 on
mismatch.

Exit codes (mirroring check_trace.py):
  0  report is valid (and matches the golden, when given)
  1  report is structurally invalid or the golden digest differs
  2  report is UNREADABLE: missing, empty, or a line is not JSON
"""

import argparse
import hashlib
import json
import sys

EXIT_INVALID = 1
EXIT_UNREADABLE = 2

CLIENT_OUTCOMES = {
    "collected",
    "shed",
    "timed_out",
    "crashed",
    "dropout",
    "link_outage",
}
ASYNC_OUTCOMES = {"applied", "crash", "dropout", "link_outage", "timeout"}
TALLY_OF_OUTCOME = {
    "collected": "collected",
    "shed": "shed",
    "timed_out": "timed_out",
    "crashed": "crashed",
    "dropout": "dropout",
    "link_outage": "link_outage",
}


def fail(msg):
    print(f"report: FAIL: {msg}", file=sys.stderr)
    sys.exit(EXIT_INVALID)


def unreadable(msg):
    print(f"report: UNREADABLE: {msg}", file=sys.stderr)
    sys.exit(EXIT_UNREADABLE)


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check_round(i, obj):
    clients = obj.get("clients")
    if not isinstance(clients, list):
        fail(f"line {i}: round without a clients array")
    if obj.get("participants") != len(clients):
        fail(
            f"line {i}: participants {obj.get('participants')} != "
            f"len(clients) {len(clients)}"
        )
    # Availability fields are optional (emitted only when the population
    # layer is on). When present they must be consistent: offline sampled
    # clients plus the surviving participants never exceed the population.
    population = obj.get("population")
    if population is not None:
        offline = obj.get("offline")
        if not is_number(population) or population < 1:
            fail(f"line {i}: bad population {population!r}")
        if not is_number(offline) or offline < 0:
            fail(f"line {i}: population without a valid offline count")
        if offline + len(clients) > population:
            fail(
                f"line {i}: offline {offline} + participants {len(clients)} "
                f"exceed population {population}"
            )
    elif obj.get("offline") is not None:
        fail(f"line {i}: offline without population")
    tallies = {key: 0 for key in TALLY_OF_OUTCOME.values()}
    stragglers = 0
    collected_weight = 0.0
    eager_bytes = 0.0
    threshold = obj.get("straggler_threshold")
    for j, c in enumerate(clients):
        outcome = c.get("outcome")
        if outcome not in CLIENT_OUTCOMES:
            fail(f"line {i}: client {j} has unknown outcome {outcome!r}")
        tallies[TALLY_OF_OUTCOME[outcome]] += 1
        weight = c.get("weight")
        if not is_number(weight) or weight < 0:
            fail(f"line {i}: client {j} has bad weight {weight!r}")
        if outcome == "collected":
            collected_weight += weight
        elif weight != 0:
            fail(f"line {i}: client {j} is {outcome} but weight {weight} != 0")
        client_eager = c.get("eager_bytes")
        client_sent = c.get("bytes_sent")
        if not is_number(client_eager) or client_eager < 0:
            fail(f"line {i}: client {j} has bad eager_bytes {client_eager!r}")
        # Tiny relative slack: both values were printed at %.10g.
        if is_number(client_sent) and client_eager > client_sent * (1 + 1e-9) + 1e-9:
            fail(
                f"line {i}: client {j} eager_bytes {client_eager} exceeds "
                f"bytes_sent {client_sent}"
            )
        eager_bytes += client_eager
        if c.get("straggler"):
            stragglers += 1
            duration = c.get("duration")
            if is_number(threshold) and is_number(duration) and duration < threshold:
                fail(
                    f"line {i}: straggler client {j} duration {duration} < "
                    f"threshold {threshold}"
                )
    for key, count in tallies.items():
        if obj.get(key) != count:
            fail(
                f"line {i}: tally {key}={obj.get(key)} but client outcomes "
                f"say {count}"
            )
    if sum(tallies.values()) != len(clients):
        fail(f"line {i}: outcome tallies do not cover every client")
    if obj.get("stragglers") != stragglers:
        fail(
            f"line {i}: stragglers={obj.get('stragglers')} but "
            f"{stragglers} clients are flagged"
        )
    round_eager = obj.get("eager_bytes")
    if not is_number(round_eager) or round_eager < 0:
        fail(f"line {i}: round eager_bytes {round_eager!r} invalid")
    if abs(round_eager - eager_bytes) > 1e-6 * max(1.0, abs(eager_bytes)):
        fail(
            f"line {i}: round eager_bytes {round_eager} != client sum "
            f"{eager_bytes}"
        )
    if tallies["collected"] > 0 and abs(collected_weight - 1.0) > 1e-6:
        fail(
            f"line {i}: collected weights sum to {collected_weight}, "
            "expected 1"
        )


def check_async(i, obj):
    outcome = obj.get("outcome")
    if outcome not in ASYNC_OUTCOMES:
        fail(f"line {i}: unknown async outcome {outcome!r}")
    lost = obj.get("lost")
    if lost not in (True, False):
        fail(f"line {i}: async line without a boolean 'lost'")
    if lost != (outcome != "applied"):
        fail(f"line {i}: lost={lost} inconsistent with outcome {outcome!r}")
    weight = obj.get("weight")
    if not is_number(weight) or weight < 0:
        fail(f"line {i}: async weight {weight!r} invalid")
    if lost and weight != 0:
        fail(f"line {i}: lost update carries weight {weight}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="run_report.jsonl file")
    parser.add_argument(
        "--summary", action="store_true", help="print a per-round summary table"
    )
    parser.add_argument(
        "--digest", action="store_true", help="print sha256 of the report bytes"
    )
    parser.add_argument(
        "--golden",
        metavar="FILE",
        help="compare sha256 of the report against the digest stored in FILE",
    )
    args = parser.parse_args()

    try:
        with open(args.report, "rb") as f:
            raw = f.read()
    except OSError as e:
        unreadable(f"cannot read {args.report}: {e}")
    if not raw.strip():
        unreadable(f"{args.report} is empty — the producer wrote nothing")

    rounds = 0
    asyncs = 0
    last_round = None
    last_update = None
    summaries = []
    for i, line in enumerate(raw.decode("utf-8").splitlines()):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            unreadable(f"line {i} is not JSON (truncated report?): {e}")
        if not isinstance(obj, dict):
            fail(f"line {i} is not an object")
        kind = obj.get("type")
        if kind == "round":
            index = obj.get("round")
            if not is_number(index):
                fail(f"line {i}: round line without a numeric index")
            # Indices strictly increase within one engine run; a reset to 0
            # starts a new segment (one file may hold several runs, e.g.
            # quickstart reports fedavg then fedca back-to-back).
            if last_round is not None and index <= last_round and index != 0:
                fail(f"line {i}: round index {index} does not increase")
            last_round = index
            check_round(i, obj)
            rounds += 1
            summaries.append(obj)
        elif kind == "async_update":
            index = obj.get("update")
            if not is_number(index):
                fail(f"line {i}: async line without a numeric index")
            if last_update is not None and index <= last_update and index != 0:
                fail(f"line {i}: update index {index} does not increase")
            last_update = index
            check_async(i, obj)
            asyncs += 1
        else:
            fail(f"line {i}: unknown type {kind!r}")

    if rounds == 0 and asyncs == 0:
        unreadable(f"{args.report} contains no report lines")

    if args.summary:
        print(
            f"{'round':>5} {'dur':>9} {'deadline':>9} {'coll':>4} {'shed':>4} "
            f"{'fault':>5} {'early':>5} {'eager':>5} {'strag':>5} {'overrun':>7}"
        )
        for obj in summaries:
            duration = obj["end"] - obj["start"]
            deadline = obj.get("deadline")
            faults = obj["crashed"] + obj["dropout"] + obj["link_outage"]
            print(
                f"{obj['round']:>5} {duration:>9.3f} "
                f"{'-' if deadline is None else format(deadline, '.3f'):>9} "
                f"{obj['collected']:>4} {obj['shed']:>4} {faults:>5} "
                f"{obj['early_stops']:>5} {obj['eager_layers']:>5} "
                f"{obj['stragglers']:>5} {str(obj['deadline_overrun']):>7}"
            )

    digest = hashlib.sha256(raw).hexdigest()
    if args.digest:
        print(digest)

    if args.golden:
        try:
            with open(args.golden, "r", encoding="utf-8") as f:
                expected = f.read().split()
        except OSError as e:
            fail(f"cannot read golden {args.golden}: {e}")
        if not expected:
            fail(f"golden {args.golden} is empty")
        if expected[0] != digest:
            fail(
                f"digest mismatch: report {digest} != golden {expected[0]} "
                f"({args.golden})"
            )

    print(
        f"report: OK: {rounds} round lines, {asyncs} async update lines"
        + (f", digest {digest[:12]}…" if args.golden else "")
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
