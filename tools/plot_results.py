#!/usr/bin/env python3
"""Plot the CSVs exported by the bench harness (csv_dir=...).

Regenerates paper-style figures from the reproduction's data:

    ./build/bench/table1_fig7_end_to_end csv_dir=results
    ./build/bench/fig8_behavior_cdf     csv_dir=results
    python3 tools/plot_results.py results out_figs/

Requires matplotlib. Every plot is best-effort: missing CSVs are skipped,
so the script works after running any subset of the benches.
"""
import csv
import os
import sys
from collections import defaultdict


def read_csv(path):
    if not os.path.exists(path):
        return None
    with open(path, newline="") as fh:
        rows = list(csv.DictReader(fh))
    return rows


def group(rows, key):
    out = defaultdict(list)
    for row in rows:
        out[row[key]].append(row)
    return out


def plot_fig7(results_dir, out_dir, plt):
    rows = read_csv(os.path.join(results_dir, "fig7_curves.csv"))
    if rows is None:
        return
    by_model = group(rows, "model")
    for model, model_rows in by_model.items():
        plt.figure(figsize=(5, 3.2))
        for scheme, series in sorted(group(model_rows, "scheme").items()):
            xs = [float(r["virtual time (s)"]) for r in series]
            ys = [float(r["accuracy"]) for r in series]
            plt.plot(xs, ys, label=scheme)
        plt.xlabel("virtual time (s)")
        plt.ylabel("accuracy")
        plt.title(f"Fig. 7 ({model}): time-to-accuracy")
        plt.legend()
        plt.tight_layout()
        plt.savefig(os.path.join(out_dir, f"fig7_{model}.png"), dpi=150)
        plt.close()


def plot_fig8(results_dir, out_dir, plt):
    for panel, title in (("fig8a", "early-stop iteration"),
                         ("fig8b", "eager-transmission iteration")):
        rows = read_csv(os.path.join(results_dir, f"{panel}.csv"))
        if rows is None:
            continue
        plt.figure(figsize=(4.2, 3.2))
        for series, points in sorted(group(rows, "series").items()):
            xs = [float(r["iteration"]) for r in points]
            ys = [float(r["CDF"]) for r in points]
            plt.plot(xs, ys, label=series)
        plt.xlabel("iteration")
        plt.ylabel("CDF")
        plt.title(f"Fig. {panel[-2:]}: {title} (CNN)")
        plt.legend()
        plt.tight_layout()
        plt.savefig(os.path.join(out_dir, f"{panel}.png"), dpi=150)
        plt.close()


def plot_curve_file(results_dir, out_dir, plt, name, label_key, title):
    rows = read_csv(os.path.join(results_dir, f"{name}.csv"))
    if rows is None:
        return
    plt.figure(figsize=(5, 3.2))
    for label, series in sorted(group(rows, label_key).items()):
        xs = [float(r["virtual time (s)"]) for r in series]
        ys = [float(r["accuracy"]) for r in series]
        plt.plot(xs, ys, label=label)
    plt.xlabel("virtual time (s)")
    plt.ylabel("accuracy")
    plt.title(title)
    plt.legend(fontsize=7)
    plt.tight_layout()
    plt.savefig(os.path.join(out_dir, f"{name}.png"), dpi=150)
    plt.close()


def plot_motivation(results_dir, out_dir, plt):
    for model in ("CNN", "LSTM", "WRN"):
        rows = read_csv(os.path.join(results_dir, f"fig2_{model}.csv"))
        if rows is None:
            continue
        plt.figure(figsize=(5, 3.2))
        for (stage, client), series in sorted(
                group_multi(rows, ("stage", "client")).items()):
            xs = [int(r["iteration"]) for r in series]
            ys = [float(r["progress"]) for r in series]
            plt.plot(xs, ys, label=f"client {client} {stage}")
        plt.xlabel("iteration")
        plt.ylabel("statistical progress P")
        plt.title(f"Fig. 2 ({model})")
        plt.legend(fontsize=7)
        plt.tight_layout()
        plt.savefig(os.path.join(out_dir, f"fig2_{model}.png"), dpi=150)
        plt.close()


def group_multi(rows, keys):
    out = defaultdict(list)
    for row in rows:
        out[tuple(row[k] for k in keys)].append(row)
    return out


def main():
    if len(sys.argv) != 3:
        print(__doc__)
        sys.exit(1)
    results_dir, out_dir = sys.argv[1], sys.argv[2]
    os.makedirs(out_dir, exist_ok=True)
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib is required: pip install matplotlib")
        sys.exit(1)

    plot_fig7(results_dir, out_dir, plt)
    plot_fig8(results_dir, out_dir, plt)
    # fig9 mixes two models in one CSV; split before plotting.
    fig9 = read_csv(os.path.join(results_dir, "fig9_curves.csv"))
    if fig9 is not None:
        for model, rows in group(fig9, "model").items():
            tmp = os.path.join(results_dir, f"fig9_curves_{model}.csv")
            with open(tmp, "w", newline="") as fh:
                writer = csv.DictWriter(fh, fieldnames=fig9[0].keys())
                writer.writeheader()
                writer.writerows(rows)
            plot_curve_file(results_dir, out_dir, plt, f"fig9_curves_{model}",
                            "scheme", f"Fig. 9 ({model}): ablation")
    plot_curve_file(results_dir, out_dir, plt, "fig10a_curves", "arm",
                    "Fig. 10a: beta sensitivity")
    plot_curve_file(results_dir, out_dir, plt, "fig10b_curves", "arm",
                    "Fig. 10b: threshold sensitivity")
    plot_motivation(results_dir, out_dir, plt)
    print(f"figures written to {out_dir}")


if __name__ == "__main__":
    main()
