#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file emitted by the fedca tracer.

Checks:
  * the file parses as JSON and is either an event array or an object with
    a "traceEvents" array;
  * every event carries the required keys for its phase, with numeric
    ts/dur/pid/tid;
  * complete ('X') spans have dur >= 0;
  * duration ('B'/'E') events pair up per (pid, tid) with no orphan ends
    and no unclosed begins;
  * per (pid, tid) track, begin timestamps are monotone non-decreasing
    (the writer sorts, so a violation means a serialization bug);
  * the wall-clock domain (pid 0, cat "wall") and the virtual domain
    (pid > 0, cat "virtual") do not share pids;
  * fault-injection events ("fault.*" / "recovery.*") are instants
    ('i'/'I') on a virtual-time pid (never pid 0), and every "fault.*"
    instant names the affected client in its args.

Usage:
  check_trace.py TRACE.json [--expect NAME]...

--expect NAME (repeatable) additionally asserts that at least one span or
instant with that exact name is present.

Exit codes distinguish "the producer never wrote a trace" from "the trace
is wrong", so harnesses (tools/run_all.sh, the robustness tests) can tell a
crashed/truncated run apart from a tracer bug:
  0  trace is valid
  1  trace is structurally invalid (semantic validation failed)
  2  trace is UNREADABLE: file missing, empty, JSON truncated/unparseable,
     or contains no events at all
"""

import argparse
import collections
import json
import sys

REQUIRED_KEYS = {"name", "ph", "pid", "tid", "ts"}
KNOWN_PHASES = {"X", "B", "E", "i", "I", "M", "C"}

EXIT_INVALID = 1
EXIT_UNREADABLE = 2


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(EXIT_INVALID)


def unreadable(msg):
    print(f"check_trace: UNREADABLE: {msg}", file=sys.stderr)
    sys.exit(EXIT_UNREADABLE)


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="trace JSON file")
    parser.add_argument(
        "--expect",
        action="append",
        default=[],
        metavar="NAME",
        help="require at least one span/instant with this name (repeatable)",
    )
    args = parser.parse_args()

    try:
        with open(args.trace, "r", encoding="utf-8") as f:
            raw = f.read()
    except OSError as e:
        unreadable(f"cannot read {args.trace}: {e}")
    if not raw.strip():
        unreadable(f"{args.trace} is empty — the producer wrote nothing")
    try:
        doc = json.loads(raw)
    except json.JSONDecodeError as e:
        unreadable(f"{args.trace} is not valid JSON (truncated trace?): {e}")

    if isinstance(doc, dict):
        events = doc.get("traceEvents")
        if not isinstance(events, list):
            fail("object form must contain a 'traceEvents' array")
    elif isinstance(doc, list):
        events = doc
    else:
        fail("top-level JSON must be an array or an object")

    if not events:
        unreadable(f"{args.trace} parses but contains no events")

    seen_names = set()
    open_stacks = collections.defaultdict(list)  # (pid, tid) -> [begin names]
    last_ts = {}  # (pid, tid) -> last event ts
    domain_of_pid = {}  # pid -> "wall" | "virtual"

    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event {i} is not an object")
        ph = ev.get("ph")
        if ph == "M":
            # Metadata events need name + pid only.
            if "name" not in ev or "pid" not in ev:
                fail(f"metadata event {i} missing name/pid")
            continue
        missing = REQUIRED_KEYS - ev.keys()
        if missing:
            fail(f"event {i} ({ev.get('name')!r}) missing keys {sorted(missing)}")
        if ph not in KNOWN_PHASES:
            fail(f"event {i} has unknown phase {ph!r}")
        if not is_number(ev["ts"]):
            fail(f"event {i} has non-numeric ts {ev['ts']!r}")
        for key in ("pid", "tid"):
            if not is_number(ev[key]):
                fail(f"event {i} has non-numeric {key}")

        track = (ev["pid"], ev["tid"])
        if ph in ("X", "B", "i", "I"):
            if track in last_ts and ev["ts"] < last_ts[track] - 1e-6:
                fail(
                    f"event {i} ({ev['name']!r}) ts {ev['ts']} goes backwards "
                    f"on track pid={track[0]} tid={track[1]} (last {last_ts[track]})"
                )
            last_ts[track] = ev["ts"]

        if ph == "X":
            dur = ev.get("dur")
            if not is_number(dur):
                fail(f"complete event {i} ({ev['name']!r}) missing numeric dur")
            if dur < 0:
                fail(f"complete event {i} ({ev['name']!r}) has negative dur {dur}")
        elif ph == "B":
            open_stacks[track].append(ev["name"])
        elif ph == "E":
            if not open_stacks[track]:
                fail(
                    f"orphan end event {i} ({ev.get('name')!r}) on track "
                    f"pid={track[0]} tid={track[1]}"
                )
            open_stacks[track].pop()

        cat = ev.get("cat")
        if cat in ("wall", "virtual"):
            prev = domain_of_pid.setdefault(ev["pid"], cat)
            if prev != cat:
                fail(
                    f"pid {ev['pid']} carries both '{prev}' and '{cat}' events — "
                    "clock domains must not share pids"
                )
            if cat == "wall" and ev["pid"] != 0:
                fail(f"wall-clock event {i} ({ev['name']!r}) outside pid 0")
            if cat == "virtual" and ev["pid"] == 0:
                fail(f"virtual event {i} ({ev['name']!r}) on the wall-clock pid")

        name = ev["name"]
        if isinstance(name, str) and (
            name.startswith("fault.") or name.startswith("recovery.")
        ):
            if ph not in ("i", "I"):
                fail(
                    f"event {i} ({name!r}) must be an instant ('i'/'I'), "
                    f"got phase {ph!r}"
                )
            if ev["pid"] == 0:
                fail(f"event {i} ({name!r}) on the wall-clock pid — fault/"
                     "recovery instants live in virtual time")
            if name.startswith("fault."):
                trace_args = ev.get("args")
                if not isinstance(trace_args, dict) or "client" not in trace_args:
                    fail(f"event {i} ({name!r}) missing 'client' in args")

        seen_names.add(ev["name"])

    for track, stack in open_stacks.items():
        if stack:
            fail(
                f"unclosed begin events {stack} on track pid={track[0]} "
                f"tid={track[1]}"
            )

    missing = [name for name in args.expect if name not in seen_names]
    if missing:
        fail(f"expected span names not found: {missing} (have {sorted(seen_names)[:20]})")

    n_spans = sum(1 for ev in events if ev.get("ph") == "X")
    print(
        f"check_trace: OK: {len(events)} events ({n_spans} spans, "
        f"{len({e['pid'] for e in events if 'pid' in e})} processes)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
