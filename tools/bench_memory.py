#!/usr/bin/env python3
"""Allocation benchmark runner: drives the counting-allocator harness
(bench/memory_harness) with the tensor buffer pool off and on, and writes
BENCH_memory.json (checked in at the repo root) with per-round allocation
counts and the reduction ratio.

The harness overrides global operator new/delete in its own translation
unit, so these numbers count every heap allocation in the process during
the measured steady-state rounds (after warmup).

Provenance: the harness reports its build_type and simd_tier; a debug
build is refused with exit 2 so checked-in numbers always come from an
optimized build. Usage:

    python3 tools/bench_memory.py [--build build] [--out BENCH_memory.json]
"""
import argparse
import json
import subprocess
import sys
from pathlib import Path


def run_harness(binary: Path, pool: int, rounds: int, warmup: int,
                workers: int) -> dict:
    cmd = [
        str(binary),
        f"pool={pool}",
        f"rounds={rounds}",
        f"warmup={warmup}",
        f"workers={workers}",
    ]
    print("+ " + " ".join(cmd), file=sys.stderr)
    run = subprocess.run(cmd, capture_output=True, text=True)
    if run.returncode != 0:
        sys.stderr.write(run.stderr)
        raise RuntimeError(f"memory_harness failed: {' '.join(cmd)}")
    return json.loads(run.stdout)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build", default="build", help="CMake build directory")
    parser.add_argument("--out", default="BENCH_memory.json", help="output path")
    parser.add_argument("--rounds", type=int, default=30,
                        help="measured steady-state rounds")
    parser.add_argument("--warmup", type=int, default=3,
                        help="warmup rounds before measuring")
    args = parser.parse_args()

    root = Path(__file__).resolve().parent.parent
    binary = root / args.build / "bench" / "memory_harness"
    if not binary.exists():
        print(f"error: {binary} not built", file=sys.stderr)
        return 1

    # Provenance probe (rounds=0 costs ~nothing): refuse debug builds
    # before burning through the measurement arms.
    probe = run_harness(binary, 0, 0, 0, 1)
    if probe.get("build_type") != "release":
        print(
            f"error: refusing to record numbers from a "
            f"'{probe.get('build_type')}' build — rebuild with NDEBUG "
            "(Release/RelWithDebInfo) and rerun",
            file=sys.stderr,
        )
        return 2
    print(f"dispatch tier: {probe.get('simd_tier')}", file=sys.stderr)

    runs = {}
    for workers in (1, 4):
        for pool in (0, 1):
            key = f"pool{pool}_workers{workers}"
            runs[key] = run_harness(binary, pool, args.rounds, args.warmup,
                                    workers)

    ratios = {}
    for workers in (1, 4):
        off = runs[f"pool0_workers{workers}"]["allocs_per_round"]
        on = runs[f"pool1_workers{workers}"]["allocs_per_round"]
        if on > 0:
            ratios[f"alloc_reduction_workers{workers}"] = round(off / on, 1)

    out = {
        "description": "Heap allocations per steady-state federated round "
                       "(counting-allocator harness, CNN/8 clients/5 iters), "
                       "tensor buffer pool off vs on.",
        "build_type": probe.get("build_type"),
        "simd_tier": probe.get("simd_tier"),
        "rounds": args.rounds,
        "warmup": args.warmup,
        "runs": runs,
        "alloc_reduction": ratios,
    }
    out_path = root / args.out
    out_path.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path}", file=sys.stderr)

    worst = min(ratios.values()) if ratios else 0.0
    print(f"allocation reduction with pool on: {ratios} (worst {worst}x)",
          file=sys.stderr)
    if worst < 10.0:
        print("FAIL: allocation reduction below the 10x acceptance floor",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
