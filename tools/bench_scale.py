#!/usr/bin/env python3
"""Scale benchmark runner: drives bench/scale_harness across population
sizes (1k / 10k / 100k / 1M virtual clients, compact registry + availability
dynamics) plus the legacy-vs-registry live client-state comparison, and
writes BENCH_scale.json (checked in at the repo root).

Gates (exit 1 on failure):
  * the 1M-client 10-round sweep must stay under 2 GB peak RSS;
  * the registry must hold >= 100x fewer live client-state bytes than the
    legacy one-live-device-per-client representation at 100k clients
    (legacy measured at a small population after a full round materializes
    every loader, projected linearly — per-client state is independent).

Provenance: the harness reports its build_type; a debug build is refused
with exit 2 so checked-in numbers always come from an optimized build.

Usage:
    python3 tools/bench_scale.py [--build build] [--out BENCH_scale.json]
"""
import argparse
import json
import subprocess
import sys
from pathlib import Path

SWEEP_CLIENTS = (1_000, 10_000, 100_000, 1_000_000)
RSS_LIMIT_BYTES = 2 * 1024**3
RATIO_FLOOR = 100.0


def run_harness(binary: Path, **kv) -> dict:
    cmd = [str(binary)] + [f"{k}={v}" for k, v in kv.items()]
    print("+ " + " ".join(cmd), file=sys.stderr)
    run = subprocess.run(cmd, capture_output=True, text=True)
    if run.returncode != 0:
        sys.stderr.write(run.stderr)
        raise RuntimeError(f"scale_harness failed: {' '.join(cmd)}")
    return json.loads(run.stdout)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build", default="build", help="CMake build directory")
    parser.add_argument("--out", default="BENCH_scale.json", help="output path")
    parser.add_argument("--rounds", type=int, default=10,
                        help="measured rounds per sweep point")
    args = parser.parse_args()

    root = Path(__file__).resolve().parent.parent
    binary = root / args.build / "bench" / "scale_harness"
    if not binary.exists():
        print(f"error: {binary} not built", file=sys.stderr)
        return 1

    probe = run_harness(binary, mode="probe")
    if probe.get("build_type") != "release":
        print(
            f"error: refusing to record numbers from a "
            f"'{probe.get('build_type')}' build — rebuild with NDEBUG "
            "(Release/RelWithDebInfo) and rerun",
            file=sys.stderr,
        )
        return 2

    sweep = {}
    for clients in SWEEP_CLIENTS:
        result = run_harness(binary, mode="sweep", clients=clients,
                             rounds=args.rounds)
        sweep[f"clients_{clients}"] = result
        print(
            f"  {clients:>9} clients: {result['rounds_per_sec']:.2f} rounds/s, "
            f"peak RSS {result['peak_rss_bytes'] / 1024**2:.0f} MB",
            file=sys.stderr,
        )

    live = run_harness(binary, mode="live_bytes", clients=100_000)
    print(
        f"  live client-state at 100k: registry "
        f"{live['registry_bytes'] / 1024**2:.1f} MB vs legacy "
        f"{live['legacy_projected_bytes'] / 1024**2:.0f} MB projected "
        f"({live['live_bytes_ratio']:.0f}x)",
        file=sys.stderr,
    )

    out = {
        "description": "Million-client scale-out: compact-registry sweep "
                       "(fixed sampled cohort, availability dynamics on) "
                       "with wall-clock rounds/sec and peak RSS per "
                       "population size, plus legacy-vs-registry live "
                       "client-state bytes at 100k clients.",
        "build_type": probe.get("build_type"),
        "rounds": args.rounds,
        "sweep": sweep,
        "live_bytes": live,
    }
    out_path = root / args.out
    out_path.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path}", file=sys.stderr)

    failed = False
    million = sweep["clients_1000000"]
    if million["peak_rss_bytes"] >= RSS_LIMIT_BYTES:
        print(
            f"FAIL: 1M-client sweep peak RSS {million['peak_rss_bytes']} "
            f"exceeds the {RSS_LIMIT_BYTES} byte (2 GB) acceptance limit",
            file=sys.stderr,
        )
        failed = True
    if live["live_bytes_ratio"] < RATIO_FLOOR:
        print(
            f"FAIL: live client-state ratio {live['live_bytes_ratio']}x is "
            f"below the {RATIO_FLOOR}x acceptance floor at 100k clients",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
