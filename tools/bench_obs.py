#!/usr/bin/env python3
"""Observability benchmark runner: drives bench/obs_harness and writes
BENCH_obs.json (checked in at the repo root).

Three measurements, two of them gated:

  * recorder throughput — mode=events pushes N span events per thread
    through the lock-free flight recorder (reported, not gated);
  * hot-loop overhead — wall seconds of the same seeded FedCA round loop
    with the tracer + per-kernel spans fully ON vs fully OFF. Each arm
    runs --repeat times and takes the minimum (robust against scheduler
    noise); the ON/OFF ratio must stay <= 1.05;
  * byte-identity — the global-model fingerprint (mode=identity) must be
    identical across workers {1,2,8} x recorder {on,off}, and the
    run_report.jsonl bytes (mode=report) identical across workers
    {1,2,8}.

Provenance: the harness reports its build_type and simd_tier; a debug
build is refused with exit 2 so checked-in numbers always come from an
optimized build.

Usage:
    python3 tools/bench_obs.py [--build build] [--out BENCH_obs.json]
"""
import argparse
import hashlib
import json
import subprocess
import sys
import tempfile
from pathlib import Path

OVERHEAD_LIMIT = 1.05


def run_harness(binary: Path, **kv) -> dict:
    cmd = [str(binary)] + [f"{k}={v}" for k, v in kv.items()]
    print("+ " + " ".join(cmd), file=sys.stderr)
    run = subprocess.run(cmd, capture_output=True, text=True)
    if run.returncode != 0:
        sys.stderr.write(run.stderr)
        raise RuntimeError(f"obs_harness failed: {' '.join(cmd)}")
    return json.loads(run.stdout)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build", default="build", help="CMake build directory")
    parser.add_argument("--out", default="BENCH_obs.json", help="output path")
    parser.add_argument("--rounds", type=int, default=16,
                        help="measured rounds per overhead arm")
    parser.add_argument("--repeat", type=int, default=5,
                        help="repetitions per overhead arm (min is used)")
    parser.add_argument("--threads", type=int, default=8,
                        help="producer threads for the throughput mode")
    parser.add_argument("--count", type=int, default=500000,
                        help="events per producer thread")
    args = parser.parse_args()

    root = Path(__file__).resolve().parent.parent
    binary = root / args.build / "bench" / "obs_harness"
    if not binary.exists():
        print(f"error: {binary} not built", file=sys.stderr)
        return 1

    failures = []

    # --- recorder throughput -------------------------------------------------
    events = run_harness(binary, mode="events", threads=args.threads,
                         count=args.count)
    if events.get("build_type") != "release":
        print(
            f"error: refusing to record numbers from a "
            f"'{events.get('build_type')}' build — rebuild with NDEBUG "
            "(Release/RelWithDebInfo) and rerun",
            file=sys.stderr,
        )
        return 2
    print(f"dispatch tier: {events.get('simd_tier')}", file=sys.stderr)

    # --- hot-loop overhead ---------------------------------------------------
    # Arms are interleaved (off, on, off, on, ...) so slow drift in machine
    # load hits both arms alike; min-of-N per arm then discards the noise.
    arms = {}
    for _ in range(args.repeat):
        for trace in (0, 1):
            run = run_harness(binary, mode="overhead", trace=trace,
                              rounds=args.rounds)
            best = arms.get(trace)
            if best is None or run["seconds"] < best["seconds"]:
                arms[trace] = run
    overhead_ratio = arms[1]["seconds"] / arms[0]["seconds"]
    if overhead_ratio > OVERHEAD_LIMIT:
        failures.append(
            f"recorder-on round loop is {overhead_ratio:.3f}x the recorder-off "
            f"loop (limit {OVERHEAD_LIMIT}x)"
        )

    # --- byte-identity -------------------------------------------------------
    fingerprints = {}
    for workers in (1, 2, 8):
        for trace in (0, 1):
            run = run_harness(binary, mode="identity", workers=workers,
                              trace=trace)
            fingerprints[f"workers{workers}_trace{trace}"] = run["fingerprint"]
    if len(set(fingerprints.values())) != 1:
        failures.append(f"model fingerprints diverge: {fingerprints}")

    report_digests = {}
    with tempfile.TemporaryDirectory() as tmp:
        for workers in (1, 2, 8):
            out = Path(tmp) / f"run_report_w{workers}.jsonl"
            run_harness(binary, mode="report", scenario="faults", out=out,
                        workers=workers)
            report_digests[f"workers{workers}"] = hashlib.sha256(
                out.read_bytes()).hexdigest()
    if len(set(report_digests.values())) != 1:
        failures.append(f"run_report.jsonl bytes diverge: {report_digests}")

    out = {
        "description": "Flight-recorder throughput, hot-loop overhead of "
                       "recorder on vs off (FedCA round loop, CNN/8 clients), "
                       "and byte-identity of model state + run report across "
                       "worker counts and recorder on/off.",
        "build_type": events.get("build_type"),
        "simd_tier": events.get("simd_tier"),
        "events_per_second": round(events["events_per_second"], 1),
        "events_dropped": events["dropped"],
        "overhead": {
            "rounds": args.rounds,
            "repeat": args.repeat,
            "seconds_recorder_off": round(arms[0]["seconds"], 6),
            "seconds_recorder_on": round(arms[1]["seconds"], 6),
            "events_recorded": arms[1]["events"],
            "ratio": round(overhead_ratio, 4),
            "limit": OVERHEAD_LIMIT,
        },
        "identity": {
            "fingerprints": fingerprints,
            "report_digests": report_digests,
            "identical": not failures,
        },
    }
    out_path = root / args.out
    out_path.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path}", file=sys.stderr)

    print(
        f"recorder: {out['events_per_second']:.0f} events/s, overhead ratio "
        f"{out['overhead']['ratio']}x (limit {OVERHEAD_LIMIT}x)",
        file=sys.stderr,
    )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
