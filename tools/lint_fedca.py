#!/usr/bin/env python3
"""FedCA invariant linter — repo-specific rules no generic tool knows.

The reproduction's headline guarantee is bit-identical output across runs,
worker counts, and allocator modes. That guarantee is carried by a handful
of source-level disciplines that neither the compiler nor clang-tidy can
check. This linter makes them structural. AST-free by design: plain
line-oriented scanning, so it runs anywhere python3 runs and never needs a
compilation database.

Rules (each finding names its rule; see --list-rules):

  raw-rng           All randomness must flow through the seeded forkable
                    Rng in src/util/rng.* — std::rand/srand, time(nullptr)
                    seeding, and std::random_device are banned in src/,
                    bench/, and examples/ (they make runs unrepeatable).
                    Waiver: // lint:rng

  unordered-iter    Output-affecting paths (src/fl, src/core, src/nn) must
                    not depend on hash-table iteration order. Both the
                    declaration of a std::unordered_map/unordered_set and
                    any iteration over one (range-for, .begin()) are
                    flagged: declarations because they are one refactor
                    away from nondeterministic iteration — prefer std::map
                    or a sorted vector; iteration because it is the bug
                    itself. Waiver: // lint:ordered (assert on the line
                    that iteration order cannot reach output).

  raw-tensor-alloc  Tensor float buffers must come from the BufferPool
                    (src/tensor/pool.cpp) so pool-on/pool-off stay
                    byte-identical and the allocation benches stay honest:
                    raw new[]/malloc/calloc/realloc/free are banned in
                    src/tensor outside pool.cpp. Waiver: // lint:alloc

  fast-math         No value-changing FP flags anywhere in the build:
                    -ffast-math, -Ofast, -funsafe-math-optimizations,
                    -fassociative-math, -freciprocal-math would let the
                    compiler reassociate the fixed accumulation orders
                    documented in src/tensor/ops.hpp. Checked in every
                    CMakeLists.txt / *.cmake (comments ignored). No waiver.

  float-accum       Kernel files (src/tensor/*.cpp, src/nn/*.cpp) that
                    declare float accumulators (identifiers containing
                    acc/sum) must carry the fixed-association comment
                    contract from tensor/ops.hpp — a comment mentioning
                    "association" — so every accumulation order is
                    documented as deliberate. Waiver: // lint:fixed-assoc

  wall-clock        The simulation is virtual-time by construction: host
                    clock reads (std::chrono::steady_clock/system_clock/
                    high_resolution_clock::now) anywhere in src/ outside
                    src/obs/ and src/sim/ would leak wall time into
                    output-affecting code and break run-to-run identity.
                    bench/ and examples/ may time real work freely.
                    Waiver: // lint:wallclock (e.g. the thread pool's
                    task-latency observer, which feeds metrics only).

  raw-intrinsics    SIMD intrinsics live behind the runtime dispatch layer
                    in src/tensor/simd/ — including <immintrin.h> /
                    <x86intrin.h> / <arm_neon.h> anywhere else would scatter
                    ISA-specific code past the tier boundary (and past the
                    per-TU -mavx2/-mavx512f compile flags), breaking the
                    scalar-fallback and determinism contracts. Applies to
                    all C++ files outside src/tensor/simd/.
                    Waiver: // lint:intrinsics

  client-container  Live ClientDevice populations are O(clients) memory and
                    defeat the compact-registry scale-out: container
                    declarations holding ClientDevice (vector/deque/list/
                    map/array, by value or unique_ptr) are banned in src/
                    outside the sanctioned seam (src/sim/cluster.* and
                    src/sim/client_registry.*, which own the legacy
                    representation and the lease pool). Engines check
                    devices out via Cluster::lease() instead.
                    Waiver: // lint:client-state (e.g. a fixed-size replica
                    pool bounded by the worker count, not the population).

  scenario-hardcode New tests must describe experiments as scenario files
                    (scenarios/*.scn + fl/scenario.hpp), not hand-built
                    ExperimentOptions literals: a default-constructed or
                    brace-initialized `ExperimentOptions x;` declaration in
                    tests/ is flagged unless the file predates the DSL
                    (frozen list below) — copy-initialization from a
                    loaded scenario or helper call is fine.
                    Waiver: // lint:scenario (e.g. comparing against the
                    struct's own defaults).

Usage:
  lint_fedca.py [--root DIR] [--list-rules]

Exits 0 when clean, 1 with one "file:line: [rule] message" per finding
otherwise, 2 on usage errors.
"""

import argparse
import json
import os
import re
import sys

# --- rule patterns -----------------------------------------------------------

RAW_RNG_PATTERNS = [
    (re.compile(r"\bstd::rand\b"), "std::rand"),
    (re.compile(r"(?<![\w:])srand\s*\("), "srand()"),
    (re.compile(r"(?<![\w:.])time\s*\(\s*(?:nullptr|NULL|0)\s*\)"), "time(nullptr) seeding"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
]

UNORDERED_DECL = re.compile(r"\bstd::unordered_(?:map|set)\s*<")
# `std::unordered_map<K, V> name...` — capture the declared identifier so
# iteration over it can be tracked through the rest of the file.
UNORDERED_DECL_NAME = re.compile(
    r"\bstd::unordered_(?:map|set)\s*<[^;{]*?>\s+(\w+)\s*[;({=]"
)
RANGE_FOR = re.compile(r"\bfor\s*\([^;)]*:\s*(\w+)\s*\)")
BEGIN_CALL = re.compile(r"\b(\w+)\.(?:begin|cbegin)\s*\(\)")

RAW_ALLOC_PATTERNS = [
    (re.compile(r"\bnew\s+[\w:<>]+\s*\["), "raw new[]"),
    (re.compile(r"(?<![\w:.])(?:malloc|calloc|realloc|free)\s*\("), "raw C allocation"),
]

FAST_MATH_FLAGS = [
    "-ffast-math",
    "-Ofast",
    "-funsafe-math-optimizations",
    "-fassociative-math",
    "-freciprocal-math",
    "-fno-math-errno=fast",  # defensive: any future "fast" spelling
]

# Declarations only (`float acc...`, `float sum...`): casting a DOUBLE
# accumulator to float at the end (static_cast<float>(acc)) is the
# sanctioned stronger pattern and must not be flagged.
FLOAT_ACCUM = re.compile(r"\bfloat\s+\w*(?:acc|sum)\w*", re.IGNORECASE)
ASSOCIATION_COMMENT = re.compile(r"(?://|\*).*associat", re.IGNORECASE)

WALL_CLOCK = re.compile(
    r"\b(?:steady_clock|system_clock|high_resolution_clock)\s*::\s*now\b")

# Raw SIMD intrinsics headers — only the dispatch tier under
# src/tensor/simd/ may include them (its TUs carry the matching -m flags).
RAW_INTRINSICS = re.compile(
    r'#\s*include\s*[<"](?:immintrin|x86intrin|arm_neon)\.h[>"]')

# Container declarations holding ClientDevice (by value or smart pointer):
# `std::vector<ClientDevice>`, `std::vector<std::unique_ptr<ClientDevice>>`,
# deque/list/map/array likewise. References in comments are stripped by the
# shared comment suppression.
CLIENT_CONTAINER = re.compile(
    r"\b(?:vector|deque|list|array|map)\s*<[^;{}]*\bClientDevice\b")

# The sanctioned seam: the legacy cluster representation and the compact
# registry's lease pool are the only places allowed to own device storage.
CLIENT_CONTAINER_SEAM = (
    "src/sim/cluster.hpp",
    "src/sim/cluster.cpp",
    "src/sim/client_registry.hpp",
    "src/sim/client_registry.cpp",
)

# Default-construction or brace-init of ExperimentOptions: `Opts x;`,
# `Opts x{...}`, `Opts x = {...}`. Copy-init from a call (`= tiny()`,
# `= sc.options`, `= resolve_options(...)`) is the sanctioned pattern and
# does not match.
SCENARIO_HARDCODE = re.compile(r"\bExperimentOptions\s+\w+\s*(?:;|\{|=\s*\{)")

# Tests that hand-built ExperimentOptions before the scenario DSL existed.
# Now empty: every legacy suite loads a committed scenarios/*.scn base.
# Never add to this set — new tests load scenarios; one-off constructions
# in non-test code waive with // lint:scenario.
SCENARIO_HARDCODE_LEGACY = set()

WAIVERS = {
    "raw-rng": "lint:rng",
    "unordered-iter": "lint:ordered",
    "raw-tensor-alloc": "lint:alloc",
    "float-accum": "lint:fixed-assoc",
    "wall-clock": "lint:wallclock",
    "raw-intrinsics": "lint:intrinsics",
    "client-container": "lint:client-state",
    "scenario-hardcode": "lint:scenario",
}

CXX_EXT = (".cpp", ".hpp", ".cc", ".h")
# analyze_fixtures is fedca_analyze's test data — trees deliberately
# seeded with violations (and sanctioned-path negatives); linting them
# would re-flag the seeds.
SKIP_DIR_PARTS = {".git", "build", "build-tsan", "build-asan", "build-sa",
                  "results", "third_party", "analyze_fixtures"}


def is_comment_or_string_hit(line, match_start):
    """Cheap suppression: a hit inside a // comment or a string literal is
    not code. Strings are detected by quote parity before the hit (escaped
    quotes skipped) — line-local, so multi-line raw strings still leak
    through; the token-level fedca_analyze tier handles those exactly."""
    comment = line.find("//")
    if comment != -1 and comment < match_start:
        return True
    quotes = 0
    i = 0
    while i < match_start:
        ch = line[i]
        if ch == "\\":
            i += 2
            continue
        if ch == '"':
            quotes += 1
        i += 1
    return quotes % 2 == 1


class Finding:
    def __init__(self, path, line_no, rule, message):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.message}"


def waived(rule, line):
    token = WAIVERS.get(rule)
    return token is not None and token in line


def lint_raw_rng(rel, lines, findings):
    if rel.replace(os.sep, "/").startswith("src/util/rng"):
        return  # the one sanctioned RNG module
    for no, line in enumerate(lines, 1):
        if waived("raw-rng", line):
            continue
        for pattern, what in RAW_RNG_PATTERNS:
            m = pattern.search(line)
            if m and not is_comment_or_string_hit(line, m.start()):
                findings.append(Finding(
                    rel, no, "raw-rng",
                    f"{what} bypasses the seeded util::Rng — runs become "
                    "unrepeatable (waive with // lint:rng)"))


def lint_unordered(rel, lines, findings):
    tracked = set()
    for no, line in enumerate(lines, 1):
        decl = UNORDERED_DECL.search(line)
        if decl and not is_comment_or_string_hit(line, decl.start()):
            name = UNORDERED_DECL_NAME.search(line)
            if name:
                tracked.add(name.group(1))
            if not waived("unordered-iter", line):
                findings.append(Finding(
                    rel, no, "unordered-iter",
                    "unordered container in an output-affecting path: "
                    "iteration order is hash-dependent — use std::map or a "
                    "sorted vector, or waive with // lint:ordered if no "
                    "iteration can reach output"))
            continue
        if waived("unordered-iter", line):
            continue
        for pattern in (RANGE_FOR, BEGIN_CALL):
            m = pattern.search(line)
            if m and m.group(1) in tracked and \
                    not is_comment_or_string_hit(line, m.start()):
                findings.append(Finding(
                    rel, no, "unordered-iter",
                    f"iteration over unordered container '{m.group(1)}' — "
                    "sort the keys or switch to an ordered container "
                    "(waive with // lint:ordered)"))


def lint_raw_alloc(rel, lines, findings):
    for no, line in enumerate(lines, 1):
        if waived("raw-tensor-alloc", line):
            continue
        for pattern, what in RAW_ALLOC_PATTERNS:
            m = pattern.search(line)
            if m and not is_comment_or_string_hit(line, m.start()):
                findings.append(Finding(
                    rel, no, "raw-tensor-alloc",
                    f"{what} in src/tensor — route buffers through "
                    "BufferPool (pool.cpp) so pool-on/off stay "
                    "byte-identical (waive with // lint:alloc)"))


def lint_fast_math(rel, lines, findings):
    for no, line in enumerate(lines, 1):
        code = line.split("#", 1)[0]  # strip cmake comments
        for flag in FAST_MATH_FLAGS:
            if flag in code:
                findings.append(Finding(
                    rel, no, "fast-math",
                    f"{flag} permits FP reassociation and breaks the fixed "
                    "accumulation orders (tensor/ops.hpp contract); no "
                    "waiver — remove the flag"))


def lint_float_accum(rel, lines, findings):
    has_contract = any(ASSOCIATION_COMMENT.search(l) for l in lines)
    for no, line in enumerate(lines, 1):
        if waived("float-accum", line):
            continue
        m = FLOAT_ACCUM.search(line)
        if m and not is_comment_or_string_hit(line, m.start()) and not has_contract:
            findings.append(Finding(
                rel, no, "float-accum",
                "float accumulator in a kernel file with no fixed-"
                "association comment — document the association order "
                "(see tensor/ops.hpp) or waive with // lint:fixed-assoc"))


def lint_wall_clock(rel, lines, findings):
    for no, line in enumerate(lines, 1):
        if waived("wall-clock", line):
            continue
        m = WALL_CLOCK.search(line)
        if m and not is_comment_or_string_hit(line, m.start()):
            findings.append(Finding(
                rel, no, "wall-clock",
                "host clock read outside src/obs//src/sim — the simulation "
                "is virtual-time; wall time in output-affecting code breaks "
                "run identity (waive with // lint:wallclock if it feeds "
                "observability only)"))


def lint_raw_intrinsics(rel, lines, findings):
    for no, line in enumerate(lines, 1):
        if waived("raw-intrinsics", line):
            continue
        m = RAW_INTRINSICS.search(line)
        if m and not is_comment_or_string_hit(line, m.start()):
            findings.append(Finding(
                rel, no, "raw-intrinsics",
                "raw SIMD intrinsics header outside src/tensor/simd/ — "
                "ISA-specific code belongs behind the dispatch tier "
                "(tensor/simd/dispatch.hpp); add a kernel there instead "
                "(waive with // lint:intrinsics)"))


def lint_client_container(rel, lines, findings):
    if rel in CLIENT_CONTAINER_SEAM:
        return
    for no, line in enumerate(lines, 1):
        if waived("client-container", line):
            continue
        m = CLIENT_CONTAINER.search(line)
        if m and not is_comment_or_string_hit(line, m.start()):
            findings.append(Finding(
                rel, no, "client-container",
                "container of ClientDevice outside the cluster/registry "
                "seam — live device storage is O(clients) and defeats the "
                "compact scale-out; check devices out via Cluster::lease() "
                "(waive with // lint:client-state if the container is "
                "bounded by workers, not population)"))


def lint_scenario_hardcode(rel, lines, findings):
    if rel in SCENARIO_HARDCODE_LEGACY:
        return
    for no, line in enumerate(lines, 1):
        if waived("scenario-hardcode", line):
            continue
        m = SCENARIO_HARDCODE.search(line)
        if m and not is_comment_or_string_hit(line, m.start()):
            findings.append(Finding(
                rel, no, "scenario-hardcode",
                "hand-built ExperimentOptions in a test — load a committed "
                "scenarios/*.scn via fl::load_scenario_file instead (waive "
                "with // lint:scenario)"))


def iter_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames
                             if d not in SKIP_DIR_PARTS and not d.startswith("."))
        for fn in sorted(filenames):
            yield os.path.join(dirpath, fn)


def lint_tree(root):
    findings = []
    for path in iter_files(root):
        rel = os.path.relpath(path, root)
        posix = rel.replace(os.sep, "/")
        base = os.path.basename(path)
        is_cmake = base == "CMakeLists.txt" or base.endswith(".cmake")
        is_cxx = base.endswith(CXX_EXT)
        if not (is_cmake or is_cxx):
            continue
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                lines = f.read().splitlines()
        except OSError as e:
            findings.append(Finding(rel, 0, "io", f"unreadable: {e}"))
            continue
        if is_cmake:
            lint_fast_math(posix, lines, findings)
            continue
        if posix.startswith(("src/", "bench/", "examples/")):
            lint_raw_rng(posix, lines, findings)
        if posix.startswith(("src/fl/", "src/core/", "src/nn/")):
            lint_unordered(posix, lines, findings)
        if posix.startswith("src/tensor/") and base != "pool.cpp":
            lint_raw_alloc(posix, lines, findings)
        if (posix.startswith(("src/tensor/", "src/nn/"))
                and base.endswith((".cpp", ".cc"))):
            lint_float_accum(posix, lines, findings)
        if posix.startswith("src/") and \
                not posix.startswith(("src/obs/", "src/sim/")):
            lint_wall_clock(posix, lines, findings)
        if not posix.startswith("src/tensor/simd/"):
            lint_raw_intrinsics(posix, lines, findings)
        if posix.startswith("src/"):
            lint_client_container(posix, lines, findings)
        if posix.startswith("tests/"):
            lint_scenario_hardcode(posix, lines, findings)
    return findings


def main():
    parser = argparse.ArgumentParser(
        description="FedCA repo invariant linter (see module docstring)")
    parser.add_argument("--root", default=None,
                        help="tree to lint (default: the repo this script lives in)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule names and exit")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as a JSON array of "
                             "{rule, file, line, message} (the same shape "
                             "fedca_analyze --json emits)")
    args = parser.parse_args()

    if args.list_rules:
        for rule in ("raw-rng", "unordered-iter", "raw-tensor-alloc",
                     "fast-math", "float-accum", "wall-clock",
                     "raw-intrinsics", "client-container",
                     "scenario-hardcode"):
            print(rule)
        return 0

    root = args.root or os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(root):
        print(f"lint_fedca: no such directory: {root}", file=sys.stderr)
        return 2

    findings = lint_tree(root)
    if args.json:
        print(json.dumps(
            [{"rule": f.rule, "file": f.path, "line": f.line_no,
              "message": f.message} for f in findings],
            indent=2))
        return 1 if findings else 0
    for f in findings:
        print(f)
    if findings:
        print(f"lint_fedca: FAIL: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint_fedca: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
