#!/usr/bin/env python3
"""Golden digests for committed scenarios.

Runs examples/fedca_scenario for each scenario in scenarios/, hashes the
emitted run report (sha256 of the raw bytes), and compares against —
or rewrites — the committed digest in tests/golden/scenario_<name>.sha256.

The environment's FEDCA_* variables are stripped before each run so the
digest reflects the scenario tier alone (scenario < env < programmatic:
a stray FEDCA_THREADS or FEDCA_REPORT must not leak into goldens; worker
count doesn't change report bytes, but the principle is hermeticity).

Usage:
  scenario_digest.py --build build --check [NAME ...]
  scenario_digest.py --build build --update [NAME ...]

With no names, all scenarios/*.scn are covered. Exit codes: 0 all match
(or updated), 1 digest mismatch / run failure, 2 usage or setup error.
"""

import argparse
import hashlib
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def clean_env() -> dict:
    env = {k: v for k, v in os.environ.items()
           if not k.startswith("FEDCA_")}
    return env


def run_scenario(runner: Path, scenario: Path, report: Path) -> bool:
    proc = subprocess.run(
        [str(runner), str(scenario), f"report={report}"],
        capture_output=True, text=True, env=clean_env())
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        print(f"FAIL: {runner.name} {scenario.name} exited {proc.returncode}",
              file=sys.stderr)
        return False
    if not report.exists():
        print(f"FAIL: {scenario.name} produced no report", file=sys.stderr)
        return False
    return True


def digest_of(report: Path) -> str:
    return hashlib.sha256(report.read_bytes()).hexdigest()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build", default="build",
                        help="build directory holding examples/fedca_scenario")
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--check", action="store_true",
                      help="compare digests against tests/golden/")
    mode.add_argument("--update", action="store_true",
                      help="rewrite tests/golden/ digests")
    parser.add_argument("names", nargs="*",
                        help="scenario names (default: all in scenarios/)")
    args = parser.parse_args()

    runner = REPO / args.build / "examples" / "fedca_scenario"
    if not runner.exists():
        print(f"error: {runner} not built (cmake --build {args.build})",
              file=sys.stderr)
        return 2

    scenario_dir = REPO / "scenarios"
    if args.names:
        scenarios = [scenario_dir / f"{n}.scn" for n in args.names]
        missing = [s for s in scenarios if not s.exists()]
        if missing:
            print(f"error: no such scenario: "
                  f"{', '.join(m.stem for m in missing)}", file=sys.stderr)
            return 2
    else:
        scenarios = sorted(scenario_dir.glob("*.scn"))
    if not scenarios:
        print("error: no scenarios found", file=sys.stderr)
        return 2

    golden_dir = REPO / "tests" / "golden"
    failures = 0
    for scenario in scenarios:
        golden = golden_dir / f"scenario_{scenario.stem}.sha256"
        with tempfile.TemporaryDirectory() as tmp:
            report = Path(tmp) / "run_report.jsonl"
            if not run_scenario(runner, scenario, report):
                failures += 1
                continue
            digest = digest_of(report)
        if args.update:
            golden.write_text(digest + "\n")
            print(f"updated {golden.relative_to(REPO)}: {digest}")
            continue
        if not golden.exists():
            print(f"FAIL: {scenario.stem}: missing golden {golden.name} "
                  f"(run with --update)", file=sys.stderr)
            failures += 1
            continue
        expected = golden.read_text().strip()
        if digest != expected:
            print(f"FAIL: {scenario.stem}: digest {digest} != golden "
                  f"{expected}", file=sys.stderr)
            failures += 1
        else:
            print(f"ok: {scenario.stem} {digest}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
