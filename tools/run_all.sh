#!/bin/sh
# Final validation pass: full test suite + every bench binary.
set -u
cd "$(dirname "$0")/.."
ctest --test-dir build 2>&1 | tee /root/repo/test_output.txt
mkdir -p /root/repo/results
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "===== $b ====="
  "$b" csv_dir=/root/repo/results
done 2>&1 | tee /root/repo/bench_output.txt
