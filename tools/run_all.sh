#!/bin/sh
# Final validation pass: full test suite + every bench binary + trace
# validation + (optional) TSan and ASan+UBSan passes over the
# instrumented engine and the fault-injection chaos suites.
set -u
cd "$(dirname "$0")/.."

# Static analysis first — cheapest stage, fails fastest. The invariant
# linter (pure python) always runs and any finding fails the pass. When
# clang is available the clang-tidy baseline gate and a clang build with
# -Werror=thread-safety (FEDCA_STATIC_ANALYSIS=ON) run too; on the
# gcc-only container those sub-stages print SKIP. FEDCA_LINT=0 skips the
# whole stage.
if [ "${FEDCA_LINT:-1}" != "0" ]; then
  echo "===== lint =====" | tee /root/repo/lint_output.txt
  python3 tools/lint_fedca.py 2>&1 | tee -a /root/repo/lint_output.txt || exit 1
  python3 tools/run_clang_tidy.py --build-dir build 2>&1 \
    | tee -a /root/repo/lint_output.txt || exit 1
  if command -v clang++ >/dev/null 2>&1; then
    echo "--- thread-safety build (clang) ---" | tee -a /root/repo/lint_output.txt
    cmake -B build-sa -S . -DCMAKE_CXX_COMPILER=clang++ \
      -DFEDCA_STATIC_ANALYSIS=ON >>/root/repo/lint_output.txt 2>&1 &&
    cmake --build build-sa -j "$(nproc)" >>/root/repo/lint_output.txt 2>&1 \
      || { echo "thread-safety build FAILED (see lint_output.txt)"; exit 1; }
  else
    echo "--- thread-safety build: SKIP (no clang++) ---" \
      | tee -a /root/repo/lint_output.txt
  fi
fi

# Semantic analyzer: the token-level static-analysis tier (include/layering
# DAG against tools/analyze/layers.spec, lock-order graph + callbacks-under-
# lock, scope-aware determinism/seam rules). Unlike the regex linter above
# it folds in the build's compile_commands.json, so a missing database is a
# configuration error (the binary exits 2), not a silent skip.
# FEDCA_ANALYZE=0 skips the stage.
if [ "${FEDCA_ANALYZE:-1}" != "0" ]; then
  echo "===== analyze =====" | tee /root/repo/analyze_output.txt
  cmake --build build --target fedca_analyze -j "$(nproc)" \
    >>/root/repo/analyze_output.txt 2>&1 \
    || { echo "fedca_analyze build FAILED (see analyze_output.txt)"; exit 1; }
  # No pipefail in sh: capture the analyzer's own status, then echo.
  build/tools/analyze/fedca_analyze --root . --build build \
    --spec tools/analyze/layers.spec >/root/repo/analyze_findings.txt 2>&1
  analyze_status=$?
  cat /root/repo/analyze_findings.txt | tee -a /root/repo/analyze_output.txt
  [ "$analyze_status" -eq 0 ] || exit "$analyze_status"
fi

ctest --test-dir build 2>&1 | tee /root/repo/test_output.txt
mkdir -p /root/repo/results
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "===== $b ====="
  "$b" csv_dir=/root/repo/results
done 2>&1 | tee /root/repo/bench_output.txt

# Scenario regression net: every committed scenarios/*.scn must reproduce
# its pinned run-report digest (tests/golden/scenario_*.sha256). This is
# the same check the per-scenario ctest entries run, but standalone so a
# golden drift is reported with the offending digest up front.
# FEDCA_SCENARIOS=0 skips; regenerate goldens with
# `python3 tools/scenario_digest.py --build build --update`.
if [ "${FEDCA_SCENARIOS:-1}" != "0" ]; then
  echo "===== scenario goldens ====="
  python3 tools/scenario_digest.py --build build --check \
    2>&1 | tee /root/repo/scenario_output.txt || exit 1
fi

# Kernel bench smoke: refresh BENCH_kernels.json (before/after numbers for
# the blocked GEMM + parallel engine work). The kernel sources are compiled
# -O3 regardless of the top-level build type; FEDCA_BENCH_KERNELS=0 skips.
if [ "${FEDCA_BENCH_KERNELS:-1}" != "0" ]; then
  echo "===== kernel benches ====="
  python3 tools/bench_kernels.py --build build --out BENCH_kernels.json \
    2>&1 | tee /root/repo/kernel_bench_output.txt
fi

# Allocation bench: refresh BENCH_memory.json via the counting-allocator
# harness (heap allocations per steady-state round, pool off vs on; fails
# if the pool-on reduction drops below 10x). FEDCA_BENCH_MEMORY=0 skips.
if [ "${FEDCA_BENCH_MEMORY:-1}" != "0" ]; then
  echo "===== memory bench ====="
  python3 tools/bench_memory.py --build build --out BENCH_memory.json \
    2>&1 | tee /root/repo/memory_bench_output.txt
fi

# Recorder/report bench: refresh BENCH_obs.json (recorder throughput, hot-loop
# overhead recorder-on vs off <= 5%, byte-identity of model state and
# run_report.jsonl across worker counts). FEDCA_BENCH_OBS=0 skips.
if [ "${FEDCA_BENCH_OBS:-1}" != "0" ]; then
  echo "===== obs bench ====="
  python3 tools/bench_obs.py --build build --out BENCH_obs.json \
    2>&1 | tee /root/repo/obs_bench_output.txt || exit 1
fi

# Scale bench: refresh BENCH_scale.json via the million-client harness
# (compact-registry sweep at 1k/10k/100k/1M with rounds/sec + peak RSS,
# legacy-vs-registry live client-state bytes at 100k; fails if the 1M sweep
# exceeds 2 GB RSS or the live-bytes ratio drops below 100x).
# FEDCA_BENCH_SCALE=0 skips.
if [ "${FEDCA_BENCH_SCALE:-1}" != "0" ]; then
  echo "===== scale bench ====="
  python3 tools/bench_scale.py --build build --out BENCH_scale.json \
    2>&1 | tee /root/repo/scale_bench_output.txt || exit 1
fi

# SIMD tier sweep: the kernel property suites must pass with the dispatch
# forced to the portable scalar tier AND left on auto (best vector tier on
# this host) — the two runs prove the tiers are interchangeable, and the
# suites' own cross-tier memcmp checks prove they are bit-identical.
# FEDCA_SIMD_SWEEP=0 skips.
if [ "${FEDCA_SIMD_SWEEP:-1}" != "0" ]; then
  echo "===== simd tier sweep =====" | tee /root/repo/simd_output.txt
  for tier in scalar auto; do
    for t in tensor_simd_kernels_test tensor_gemm_property_test; do
      echo "--- $t (FEDCA_SIMD=$tier) ---"
      FEDCA_SIMD=$tier "build/tests/$t" || exit 1
    done
  done 2>&1 | tee -a /root/repo/simd_output.txt
fi

# Observability smoke: a traced quickstart must produce a Chrome-trace file
# that check_trace.py accepts, with the canonical span set present, and a
# run_report.jsonl that tools/report.py validates structurally.
echo "===== traced quickstart ====="
FEDCA_TRACE=/root/repo/results/quickstart_trace.json \
FEDCA_METRICS=/root/repo/results/quickstart_metrics.csv \
  build/examples/quickstart rounds=6 clients=6 k=12 samples=600 \
  report=/root/repo/results/quickstart_report.jsonl \
  2>&1 | tee /root/repo/trace_output.txt
python3 tools/check_trace.py /root/repo/results/quickstart_trace.json \
  --expect download --expect compute --expect upload.final --expect aggregate \
  --expect round 2>&1 | tee -a /root/repo/trace_output.txt
python3 tools/report.py /root/repo/results/quickstart_report.jsonl --summary \
  2>&1 | tee -a /root/repo/trace_output.txt || exit 1

# TSan pass over the concurrency-sensitive pieces (the metrics registry,
# the tracer, and the instrumented round engine under the thread pool).
# FEDCA_TSAN=0 skips it (e.g. when the toolchain lacks libtsan).
if [ "${FEDCA_TSAN:-1}" != "0" ]; then
  echo "===== tsan =====" | tee /root/repo/tsan_output.txt
  cmake -B build-tsan -S . -DFEDCA_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    >>/root/repo/tsan_output.txt 2>&1 &&
  cmake --build build-tsan --target obs_metrics_test obs_trace_test \
    obs_recorder_test fl_round_engine_test fl_parallel_determinism_test \
    fl_async_engine_test tensor_pool_test tensor_simd_kernels_test \
    tensor_gemm_property_test -j "$(nproc)" \
    >>/root/repo/tsan_output.txt 2>&1 &&
  for t in obs_metrics_test obs_trace_test obs_recorder_test \
           fl_round_engine_test fl_parallel_determinism_test \
           fl_async_engine_test tensor_pool_test; do
    echo "--- $t (tsan) ---"
    # FEDCA_TENSOR_POOL=1 routes every Tensor buffer through the pool's
    # thread-cache/global-tier handoff while the engines run multithreaded.
    FEDCA_TENSOR_POOL=1 "build-tsan/tests/$t" || exit 1
  done 2>&1 | tee -a /root/repo/tsan_output.txt
  # Kernel property suites under TSan in both dispatch tiers: the packed
  # GEMM's thread_local scratch and the once-resolved tier cache are the
  # racy-by-construction pieces this pass is meant to vet.
  for tier in scalar auto; do
    for t in tensor_simd_kernels_test tensor_gemm_property_test; do
      echo "--- $t (tsan, FEDCA_SIMD=$tier) ---"
      FEDCA_SIMD=$tier FEDCA_TENSOR_POOL=1 "build-tsan/tests/$t" || exit 1
    done
  done 2>&1 | tee -a /root/repo/tsan_output.txt
fi

# ASan+UBSan pass over the fault-injection layer and the hardened engines:
# the chaos suites exercise the unhappy paths (infinite finish times,
# partial aggregation, abandoned async cycles) where lifetime and UB bugs
# would hide. FEDCA_ASAN=0 skips it (e.g. when the toolchain lacks libasan).
if [ "${FEDCA_ASAN:-1}" != "0" ]; then
  echo "===== asan+ubsan =====" | tee /root/repo/asan_output.txt
  cmake -B build-asan -S . -DFEDCA_SANITIZE=address,undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    >>/root/repo/asan_output.txt 2>&1 &&
  cmake --build build-asan --target sim_fault_injection_test \
    fl_robustness_test tensor_pool_test -j "$(nproc)" \
    >>/root/repo/asan_output.txt 2>&1 &&
  for t in sim_fault_injection_test fl_robustness_test tensor_pool_test; do
    echo "--- $t (asan+ubsan) ---"
    # Pool on: recycled-buffer lifetime and poisoning run under ASan too.
    FEDCA_TENSOR_POOL=1 "build-asan/tests/$t" || exit 1
  done 2>&1 | tee -a /root/repo/asan_output.txt
fi
